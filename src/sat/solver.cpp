#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <unordered_map>

#include "fault/fault.h"

namespace dfv::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClaDecay = 0.999;
constexpr double kRescaleLimit = 1e100;

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

/// splitmix64: the per-instance deterministic stream behind SolverOptions::
/// seed.  Stateless (mixes seed ^ counter), so variable allocation order is
/// the only input — never the wall clock or a shared RNG.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Solver::Solver() = default;

Solver::Solver(const SolverOptions& options) : options_(options) {
  DFV_CHECK_MSG(options.restartBase > 0, "restartBase must be positive");
  DFV_CHECK_MSG(options.geometricGrowth >= 1.0,
                "geometricGrowth must be >= 1.0");
}

Solver::~Solver() {
  for (Clause* c : clauses_) delete c;
  for (Clause* c : learnts_) delete c;
}

Var Solver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  // Seeded portfolio diversification: initial phase bits and a sub-unit
  // activity jitter (ties in the VSIDS heap break differently per seed;
  // real bumps are >= 1.0 so the jitter never outranks learned activity).
  const std::uint64_t r =
      options_.seed == 0
          ? 0
          : mix64(options_.seed ^ static_cast<std::uint64_t>(v));
  phase_.push_back(options_.seed != 0 && (r & 1) != 0 ? LBool::kTrue
                                                      : LBool::kFalse);
  levels_.push_back(0);
  reasons_.push_back(nullptr);
  activity_.push_back(
      options_.seed == 0
          ? 0.0
          : 1e-9 * static_cast<double>((r >> 1) & 0xffffffULL));
  seen_.push_back(0);
  heapPos_.push_back(-1);
  eliminated_.push_back(false);
  elimIndex_.push_back(-1);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heapInsert(v);
  return v;
}

Lit Solver::trueLit() {
  if (trueLit_.code() < 0) {
    const Var v = newVar();
    trueLit_ = Lit(v, false);
    addClause(trueLit_);
  }
  return trueLit_;
}

bool Solver::addClause(std::vector<Lit> lits) {
  DFV_CHECK_MSG(trailLimits_.empty(), "addClause above decision level 0");
  if (!okay_) return false;
  // A new clause may mention a variable that bounded variable elimination
  // removed in an earlier solve; un-eliminate it first (re-adding its
  // clauses) so the elimination stays invisible to incremental callers.
  for (Lit l : lits) {
    DFV_CHECK_MSG(static_cast<std::size_t>(l.var()) < assigns_.size(),
                  "clause uses unallocated variable");
    if (eliminated_[static_cast<std::size_t>(l.var())]) restoreVar(l.var());
  }
  if (!okay_) return false;
  // Simplify: sort, dedup, drop false lits, detect tautology / true lits.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = Lit::fromCode(-2);
  for (Lit l : lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology
    if (value(l) == LBool::kTrue) return true;
    if (value(l) == LBool::kFalse) continue;  // root-level false: drop lit
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    okay_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], nullptr);
    okay_ = propagate() == nullptr;
    return okay_;
  }
  auto* c = new Clause{std::move(out), 0.0, 0, false};
  clauses_.push_back(c);
  attachClause(c);
  return true;
}

void Solver::attachClause(Clause* c) {
  DFV_CHECK(c->lits.size() >= 2);
  watchesFor(~c->lits[0]).push_back(Watcher{c, c->lits[1]});
  watchesFor(~c->lits[1]).push_back(Watcher{c, c->lits[0]});
}

void Solver::detachClause(Clause* c) {
  for (int i = 0; i < 2; ++i) {
    auto& ws = watchesFor(~c->lits[static_cast<std::size_t>(i)]);
    auto it = std::find_if(ws.begin(), ws.end(),
                           [c](const Watcher& w) { return w.clause == c; });
    DFV_CHECK(it != ws.end());
    ws.erase(it);
  }
}

void Solver::enqueue(Lit l, Clause* reason) {
  DFV_CHECK(value(l) == LBool::kUndef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = lboolOf(!l.negated());
  levels_[v] = static_cast<int>(trailLimits_.size());
  reasons_[v] = reason;
  trail_.push_back(l);
  ++stats_.propagations;
}

Solver::Clause* Solver::propagate() {
  while (propagateHead_ < trail_.size()) {
    const Lit p = trail_[propagateHead_++];
    auto& ws = watchesFor(p);
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause* c = w.clause;
      auto& lits = c->lits;
      // Ensure the false literal (~p) is at position 1.
      const Lit falseLit = ~p;
      if (lits[0] == falseLit) std::swap(lits[0], lits[1]);
      DFV_CHECK(lits[1] == falseLit);
      ++i;
      // If first literal is true, the clause is satisfied.
      if (value(lits[0]) == LBool::kTrue) {
        ws[j++] = Watcher{c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool foundWatch = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watchesFor(~lits[1]).push_back(Watcher{c, lits[0]});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;
      // Clause is unit or conflicting.
      ws[j++] = Watcher{c, lits[0]};
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: copy remaining watchers back and bail out.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagateHead_ = trail_.size();
        return c;
      }
      enqueue(lits[0], c);
    }
    ws.resize(j);
  }
  return nullptr;
}

std::uint32_t Solver::computeLbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels; small LBD = high-quality clause.
  std::vector<int> lvls;
  lvls.reserve(lits.size());
  for (Lit l : lits) lvls.push_back(level(l.var()));
  std::sort(lvls.begin(), lvls.end());
  return static_cast<std::uint32_t>(
      std::unique(lvls.begin(), lvls.end()) - lvls.begin());
}

void Solver::analyze(Clause* conflict, std::vector<Lit>& learnt,
                     int& backtrackLevel, std::uint32_t& lbd) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  int pathCount = 0;
  Lit p = Lit();
  std::size_t index = trail_.size();
  Clause* reason = conflict;

  do {
    DFV_CHECK(reason != nullptr);
    if (reason->learnt) claBumpActivity(reason);
    for (std::size_t k = (p == Lit() ? 0 : 1); k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const auto qv = static_cast<std::size_t>(q.var());
      if (!seen_[qv] && level(q.var()) > 0) {
        seen_[qv] = 1;
        varBumpActivity(q.var());
        if (level(q.var()) >= static_cast<int>(trailLimits_.size())) {
          ++pathCount;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Next literal on the trail that is marked seen.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    --index;
    p = trail_[index];
    reason = reasons_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --pathCount;
  } while (pathCount > 0);
  learnt[0] = ~p;

  // Clause minimization: drop literals implied by the rest of the clause.
  analyzeToClear_ = learnt;
  std::uint32_t abstractLevels = 0;
  for (std::size_t k = 1; k < learnt.size(); ++k)
    abstractLevels |= 1u << (level(learnt[k].var()) & 31);
  std::size_t keep = 1;
  for (std::size_t k = 1; k < learnt.size(); ++k) {
    const auto v = static_cast<std::size_t>(learnt[k].var());
    if (reasons_[v] == nullptr || !litRedundant(learnt[k], abstractLevels))
      learnt[keep++] = learnt[k];
  }
  learnt.resize(keep);
  for (Lit l : analyzeToClear_) seen_[static_cast<std::size_t>(l.var())] = 0;
  for (Lit l : learnt) seen_[static_cast<std::size_t>(l.var())] = 0;

  // Backtrack level: second-highest level in the clause.
  if (learnt.size() == 1) {
    backtrackLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k)
      if (level(learnt[k].var()) > level(learnt[maxI].var())) maxI = k;
    std::swap(learnt[1], learnt[maxI]);
    backtrackLevel = level(learnt[1].var());
  }
  lbd = computeLbd(learnt);
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  const std::size_t clearTop = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit cur = analyzeStack_.back();
    analyzeStack_.pop_back();
    Clause* reason = reasons_[static_cast<std::size_t>(cur.var())];
    DFV_CHECK(reason != nullptr);
    for (std::size_t k = 1; k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level(q.var()) == 0) continue;
      if (reasons_[qv] == nullptr ||
          ((1u << (level(q.var()) & 31)) & abstractLevels) == 0) {
        // Not removable: undo marks made during this check.
        for (std::size_t m = clearTop; m < analyzeToClear_.size(); ++m)
          seen_[static_cast<std::size_t>(analyzeToClear_[m].var())] = 0;
        analyzeToClear_.resize(clearTop);
        return false;
      }
      seen_[qv] = 1;
      analyzeStack_.push_back(q);
      analyzeToClear_.push_back(q);
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p, std::vector<Lit>& outConflict) {
  outConflict.clear();
  outConflict.push_back(p);
  if (trailLimits_.empty()) return;
  seen_[static_cast<std::size_t>(p.var())] = 1;
  for (std::size_t i = trail_.size(); i-- > trailLimits_[0];) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (!seen_[v]) continue;
    if (reasons_[v] == nullptr) {
      DFV_CHECK(level(trail_[i].var()) > 0);
      outConflict.push_back(~trail_[i]);
    } else {
      for (std::size_t k = 1; k < reasons_[v]->lits.size(); ++k) {
        const Lit q = reasons_[v]->lits[k];
        if (level(q.var()) > 0) seen_[static_cast<std::size_t>(q.var())] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(p.var())] = 0;
}

void Solver::backtrackTo(int lvl) {
  if (static_cast<int>(trailLimits_.size()) <= lvl) return;
  const std::size_t bound = trailLimits_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (options_.phaseSaving) phase_[v] = assigns_[v];  // phase saving
    assigns_[v] = LBool::kUndef;
    reasons_[v] = nullptr;
    if (!heapContains(trail_[i].var())) heapInsert(trail_[i].var());
  }
  trail_.resize(bound);
  trailLimits_.resize(static_cast<std::size_t>(lvl));
  propagateHead_ = trail_.size();
}

Lit Solver::pickBranchLit() {
  while (true) {
    if (heap_.empty()) return Lit();
    const Var v = heapPop();
    if (eliminated_[static_cast<std::size_t>(v)]) continue;
    if (value(v) == LBool::kUndef) {
      ++stats_.decisions;
      return Lit(v, phase_[static_cast<std::size_t>(v)] == LBool::kFalse);
    }
  }
}

void Solver::varBumpActivity(Var v) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act += varInc_;
  if (act > kRescaleLimit) {
    for (auto& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapContains(v)) heapUpdate(v);
}

void Solver::varDecayActivity() { varInc_ /= kVarDecay; }

void Solver::claBumpActivity(Clause* c) {
  c->activity += claInc_;
  if (c->activity > kRescaleLimit) {
    for (Clause* lc : learnts_) lc->activity *= 1e-100;
    claInc_ *= 1e-100;
  }
}

void Solver::claDecayActivity() { claInc_ /= kClaDecay; }

void Solver::reduceDb() {
  // Keep the better half of learnt clauses; never delete reason clauses or
  // clauses with very small LBD.
  std::sort(learnts_.begin(), learnts_.end(), [](Clause* a, Clause* b) {
    if (a->lbd != b->lbd) return a->lbd > b->lbd;
    return a->activity < b->activity;
  });
  auto isReason = [this](Clause* c) {
    const Lit first = c->lits[0];
    return value(first) == LBool::kTrue &&
           reasons_[static_cast<std::size_t>(first.var())] == c;
  };
  std::vector<Clause*> kept;
  kept.reserve(learnts_.size());
  const std::size_t dropTarget = learnts_.size() / 2;
  std::size_t dropped = 0;
  for (Clause* c : learnts_) {
    if (dropped < dropTarget && c->lbd > 2 && c->lits.size() > 2 &&
        !isReason(c)) {
      detachClause(c);
      delete c;
      ++dropped;
      ++stats_.deletedClauses;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     const Budget& budget) {
  budget.validate();
  conflict_.clear();
  model_.clear();
  // Fault-injection site: every solve call passes through here, so armed
  // policies can model a crashing solver (throw), a solver that gives up
  // for no reason (spurious kUnknown), or a budget that expires before any
  // work is done.  With no injector installed this is one pointer load.
  switch (fault::onSiteHit(fault::Site::kSolverSolve)) {
    case fault::Policy::kThrowCheckError:
      fault::throwInjected(fault::Site::kSolverSolve);
    case fault::Policy::kSpuriousUnknown:
      return Result::kUnknown;
    case fault::Policy::kExhaustBudget:
      // Only a budgeted call may legitimately return kUnknown (see Result);
      // injected early exhaustion respects that contract.
      if (!budget.unlimited()) return Result::kUnknown;
      break;
    default:
      break;
  }
  if (!okay_) return Result::kUnsat;
  for (Lit a : assumptions) {
    DFV_CHECK_MSG(static_cast<std::size_t>(a.var()) < assigns_.size(),
                  "assumption uses unallocated variable");
    // An assumed variable must carry its clauses: model extension would
    // otherwise be free to contradict the assumed value.
    if (eliminated_[static_cast<std::size_t>(a.var())]) restoreVar(a.var());
  }
  if (!okay_) return Result::kUnsat;

  // Budget accounting is relative to this call; cumulative stats_ provide
  // the baselines.  The wall clock is sampled only every few conflicts /
  // decisions so an unlimited run pays nothing for the feature.
  const std::uint64_t conflicts0 = stats_.conflicts;
  const std::uint64_t propagations0 = stats_.propagations;
  const auto wallStart = std::chrono::steady_clock::now();
  std::uint32_t budgetTick = 0;
  auto budgetExpired = [&]() -> bool {
    if (budget.cancelled()) return true;
    if (budget.maxConflicts != 0 &&
        stats_.conflicts - conflicts0 >=
            static_cast<std::uint64_t>(budget.maxConflicts))
      return true;
    if (budget.maxPropagations != 0 &&
        stats_.propagations - propagations0 >=
            static_cast<std::uint64_t>(budget.maxPropagations))
      return true;
    if (budget.maxSeconds > 0.0 && (++budgetTick & 63u) == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wallStart)
              .count();
      if (elapsed >= budget.maxSeconds) return true;
    }
    return false;
  };

  auto restartLimit = [this](int n) -> std::uint64_t {
    const double base = static_cast<double>(options_.restartBase);
    if (options_.restartPolicy == RestartPolicy::kGeometric)
      return static_cast<std::uint64_t>(
          base * std::pow(options_.geometricGrowth, n));
    return static_cast<std::uint64_t>(luby(2.0, n) * base);
  };
  int restartCount = 0;
  std::uint64_t conflictBudget = restartLimit(restartCount);
  std::uint64_t conflictsThisRestart = 0;
  std::size_t maxLearnts = clauses_.size() / 3 + 1000;

  for (;;) {
    Clause* confl = propagate();
    if (confl != nullptr) {
      ++stats_.conflicts;
      ++conflictsThisRestart;
      if (trailLimits_.empty()) {
        okay_ = false;
        return Result::kUnsat;  // conflict at root level
      }
      std::vector<Lit> learnt;
      int btLevel;
      std::uint32_t lbd;
      analyze(confl, learnt, btLevel, lbd);
      backtrackTo(btLevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], nullptr);
      } else {
        auto* c = new Clause{std::move(learnt), 0.0, lbd, true};
        learnts_.push_back(c);
        ++stats_.learntClauses;
        attachClause(c);
        claBumpActivity(c);
        enqueue(c->lits[0], c);
      }
      varDecayActivity();
      claDecayActivity();
      if (!budget.unlimited() && budgetExpired()) {
        backtrackTo(0);
        return Result::kUnknown;
      }
      continue;
    }

    // No conflict.
    if (!budget.unlimited() && budgetExpired()) {
      backtrackTo(0);
      return Result::kUnknown;
    }
    if (conflictsThisRestart >= conflictBudget) {
      ++stats_.restarts;
      ++restartCount;
      conflictsThisRestart = 0;
      conflictBudget = restartLimit(restartCount);
      backtrackTo(0);
      if (options_.inprocess && stats_.conflicts >= nextInprocess_) {
        inprocessStep(assumptions, budgetExpired);
        if (!okay_) return Result::kUnsat;
        if (!budget.unlimited() && budgetExpired()) return Result::kUnknown;
      }
      continue;
    }
    if (learnts_.size() >= maxLearnts) {
      reduceDb();
      maxLearnts = maxLearnts * 11 / 10;
    }

    // Decide: assumptions first, then VSIDS.
    Lit next = Lit();
    while (trailLimits_.size() < assumptions.size()) {
      const Lit a = assumptions[trailLimits_.size()];
      if (value(a) == LBool::kTrue) {
        trailLimits_.push_back(trail_.size());  // dummy level
      } else if (value(a) == LBool::kFalse) {
        analyzeFinal(~a, conflict_);
        backtrackTo(0);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == Lit()) next = pickBranchLit();
    if (next == Lit()) {
      // All variables assigned: model found.  Eliminated variables are the
      // only unassigned ones; extendModel() gives them satisfying values.
      model_.assign(assigns_.begin(), assigns_.end());
      extendModel();
      backtrackTo(0);
      return Result::kSat;
    }
    trailLimits_.push_back(trail_.size());
    enqueue(next, nullptr);
  }
}

// ----- inprocessing ---------------------------------------------------------
//
// Runs at decision level 0 between restarts (see solve()).  Three phases —
// clause vivification, (self-)subsumption, bounded variable elimination —
// each deterministic (fixed iteration orders, triggered purely by conflict
// counts) and bounded per round by fixed work caps.  Every propagation and
// conflict they perform lands in the same cumulative stats_ the search
// charges, so Budget caps see inprocessing work and capped verdicts remain
// machine-independent.  Root-level units are assignments, never clauses
// (addClause enqueues them), so no phase here can resolve away the
// equivalence units a fraig sweep asserts.

namespace {
constexpr std::size_t kVivifyPerRound = 128;   // clauses distilled per round
constexpr std::size_t kVivifyMaxClause = 64;   // skip very long clauses
constexpr std::size_t kSubsumePerRound = 512;  // subsumer clauses per round
constexpr std::size_t kSubsumeOccCap = 400;    // skip huge occurrence lists
constexpr int kElimVarsPerRound = 2048;        // candidate vars per round
constexpr std::size_t kElimOccCap = 10;        // max occurrences per polarity
constexpr std::size_t kElimMaxResolvent = 16;  // max kept resolvent length

/// Variable-based 64-bit clause abstraction: c can subsume d only if
/// (sig(c) & ~sig(d)) == 0.
std::uint64_t clauseSig(const std::vector<Lit>& lits) {
  std::uint64_t sig = 0;
  for (Lit l : lits) sig |= 1ull << (l.var() & 63);
  return sig;
}
}  // namespace

void Solver::clearReasonsOf(Clause* c) {
  for (Lit l : c->lits) {
    const auto v = static_cast<std::size_t>(l.var());
    if (reasons_[v] == c) reasons_[v] = nullptr;
  }
}

void Solver::killClause(Clause* c) {
  DFV_CHECK(!c->dead);
  detachClause(c);
  clearReasonsOf(c);
  c->dead = true;
}

void Solver::sweepDeadClauses() {
  auto sweep = [this](std::vector<Clause*>& list) {
    std::size_t j = 0;
    for (Clause* c : list) {
      if (c->dead) {
        delete c;
        ++stats_.deletedClauses;
      } else {
        list[j++] = c;
      }
    }
    list.resize(j);
  };
  sweep(clauses_);
  sweep(learnts_);
}

void Solver::inprocessStep(const std::vector<Lit>& assumptions,
                           const std::function<bool()>& expired) {
  DFV_CHECK(trailLimits_.empty());
  ++stats_.inprocessRounds;
  nextInprocess_ = stats_.conflicts + options_.inprocessInterval;
  // Root-level reasons may point at clauses a phase deletes; conflict
  // analysis never follows level-0 reasons, so null them up front.
  for (Lit l : trail_) reasons_[static_cast<std::size_t>(l.var())] = nullptr;
  if (okay_ && options_.inprocessVivify && !expired()) vivifyRound(expired);
  if (okay_ && options_.inprocessSubsume && !expired()) subsumeRound(expired);
  if (okay_ && options_.inprocessEliminate && !expired())
    eliminateRound(assumptions, expired);
  sweepDeadClauses();
}

void Solver::vivifyRound(const std::function<bool()>& expired) {
  std::size_t budgetLeft = std::min(kVivifyPerRound, clauses_.size());
  while (budgetLeft > 0 && okay_ && !expired()) {
    --budgetLeft;
    if (clauses_.empty()) return;
    if (vivifyHead_ >= clauses_.size()) vivifyHead_ = 0;
    Clause* c = clauses_[vivifyHead_++];
    if (c->dead || c->lits.size() < 2 || c->lits.size() > kVivifyMaxClause)
      continue;
    bool rootSat = false;
    for (Lit l : c->lits)
      if (value(l) == LBool::kTrue) {
        rootSat = true;
        break;
      }
    if (rootSat) {
      killClause(c);  // satisfied at the root: gone for good
      continue;
    }
    // Distillation: assume the negation of each literal in turn at one
    // temporary decision level, with c itself detached so the derivation
    // never uses the clause it is shortening.  A literal already true under
    // the prefix (or a propagation conflict) proves the prefix implies the
    // clause; a false literal is implied redundant and dropped.
    detachClause(c);
    const std::vector<Lit> original = c->lits;
    std::vector<Lit> kept;
    trailLimits_.push_back(trail_.size());
    for (Lit l : original) {
      const LBool lv = value(l);
      if (lv == LBool::kTrue) {
        kept.push_back(l);
        break;
      }
      if (lv == LBool::kFalse) continue;
      enqueue(~l, nullptr);
      kept.push_back(l);
      if (propagate() != nullptr) {
        ++stats_.conflicts;
        break;
      }
    }
    backtrackTo(0);
    if (kept.size() >= original.size()) {
      attachClause(c);  // nothing learnt; restore as-is
      continue;
    }
    ++stats_.vivifiedClauses;
    if (kept.empty()) {
      // Every literal was false at the root: the formula is unsatisfiable.
      clearReasonsOf(c);
      c->dead = true;
      okay_ = false;
      return;
    }
    if (kept.size() == 1) {
      clearReasonsOf(c);
      c->dead = true;
      const Lit u = kept[0];
      if (value(u) == LBool::kFalse) {
        okay_ = false;
      } else if (value(u) == LBool::kUndef) {
        enqueue(u, nullptr);
        okay_ = propagate() == nullptr;
      }
      continue;
    }
    c->lits = kept;
    attachClause(c);
  }
}

int Solver::subsumes(const Clause* c, const Clause* d, Lit& flip) const {
  flip = Lit();
  for (Lit lc : c->lits) {
    bool found = false;
    for (Lit ld : d->lits) {
      if (ld == lc) {
        found = true;
        break;
      }
      if (ld == ~lc) {
        if (flip != Lit()) return 0;  // two flipped literals: neither
        flip = ld;
        found = true;
        break;
      }
    }
    if (!found) return 0;
  }
  return flip == Lit() ? 1 : 2;
}

void Solver::strengthen(Clause* c, Lit l) {
  detachClause(c);
  clearReasonsOf(c);
  c->lits.erase(std::find(c->lits.begin(), c->lits.end(), l));
  ++stats_.vivifiedClauses;
  DFV_CHECK(!c->lits.empty());
  if (c->lits.size() == 1) {
    c->dead = true;  // the survivor becomes a root assignment
    const Lit u = c->lits[0];
    if (value(u) == LBool::kFalse) {
      okay_ = false;
    } else if (value(u) == LBool::kUndef) {
      enqueue(u, nullptr);
      okay_ = propagate() == nullptr;
    }
    return;
  }
  attachClause(c);
}

void Solver::subsumeRound(const std::function<bool()>& expired) {
  if (clauses_.empty()) return;
  // Occurrence lists and signatures, rebuilt per round.  Problem clauses
  // subsume; problem and learnt clauses alike can be subsumed/strengthened.
  std::vector<std::vector<Clause*>> occ(assigns_.size());
  std::unordered_map<Clause*, std::uint64_t> sig;
  auto addOcc = [&](Clause* c) {
    if (c->dead) return;
    sig.emplace(c, clauseSig(c->lits));
    for (Lit l : c->lits) occ[static_cast<std::size_t>(l.var())].push_back(c);
  };
  for (Clause* c : clauses_) addOcc(c);
  for (Clause* c : learnts_) addOcc(c);

  std::size_t budgetLeft = std::min(kSubsumePerRound, clauses_.size());
  while (budgetLeft > 0 && okay_ && !expired()) {
    --budgetLeft;
    if (subsumeHead_ >= clauses_.size()) subsumeHead_ = 0;
    Clause* c = clauses_[subsumeHead_++];
    if (c->dead || c->lits.size() < 2) continue;
    // Scan the shortest occurrence list among c's variables.  Signatures
    // only lose bits as clauses shrink, so the stale map stays a sound
    // (conservative) filter.
    auto best = static_cast<std::size_t>(c->lits[0].var());
    for (Lit l : c->lits) {
      const auto v = static_cast<std::size_t>(l.var());
      if (occ[v].size() < occ[best].size()) best = v;
    }
    if (occ[best].size() > kSubsumeOccCap) continue;
    const std::uint64_t cs = sig[c];
    for (Clause* d : occ[best]) {
      if (d == c || d->dead || d->lits.size() < c->lits.size()) continue;
      if ((cs & ~sig[d]) != 0) continue;
      Lit flip;
      const int r = subsumes(c, d, flip);
      if (r == 1) {
        killClause(d);
        ++stats_.subsumedClauses;
      } else if (r == 2) {
        strengthen(d, flip);  // self-subsuming resolution
        if (!okay_) return;
      }
    }
  }
}

void Solver::eliminateRound(const std::vector<Lit>& assumptions,
                            const std::function<bool()>& expired) {
  if (assigns_.empty()) return;
  // Variables in the current assumption set must keep their clauses: model
  // extension would otherwise be free to contradict the assumed value.
  std::vector<bool> frozen(assigns_.size(), false);
  for (Lit a : assumptions) frozen[static_cast<std::size_t>(a.var())] = true;
  // Signed occurrence lists over problem clauses, variable-based over
  // learnts (so eliminating v can drop the learnts that mention it).
  // Strengthened clauses leave stale entries; membership is re-checked.
  std::vector<std::vector<Clause*>> occ(2 * assigns_.size());
  for (Clause* c : clauses_) {
    if (c->dead) continue;
    for (Lit l : c->lits)
      occ[static_cast<std::size_t>(l.code())].push_back(c);
  }
  std::vector<std::vector<Clause*>> occL(assigns_.size());
  for (Clause* c : learnts_) {
    if (c->dead) continue;
    for (Lit l : c->lits)
      occL[static_cast<std::size_t>(l.var())].push_back(c);
  }
  const auto contains = [](const Clause* c, Lit l) {
    return std::find(c->lits.begin(), c->lits.end(), l) != c->lits.end();
  };
  const auto containsVar = [](const Clause* c, Var v) {
    for (Lit l : c->lits)
      if (l.var() == v) return true;
    return false;
  };
  // Resolvent of p (contains pos) and q (contains ~pos) on pos.var(),
  // simplified against root values.  False = tautological or satisfied.
  std::vector<Lit> resolvent;
  const auto makeResolvent = [&](const Clause* p, const Clause* q,
                                 Lit pos) -> bool {
    resolvent.clear();
    for (Lit l : p->lits)
      if (l != pos) resolvent.push_back(l);
    for (Lit l : q->lits)
      if (l != ~pos) resolvent.push_back(l);
    std::sort(resolvent.begin(), resolvent.end());
    std::size_t j = 0;
    Lit prev = Lit();
    for (Lit l : resolvent) {
      if (l == prev) continue;
      if (prev != Lit() && l == ~prev) return false;  // tautology
      if (value(l) == LBool::kTrue) return false;     // satisfied at root
      if (value(l) == LBool::kFalse) continue;        // root-false: drop
      resolvent[j++] = l;
      prev = l;
    }
    resolvent.resize(j);
    return true;
  };

  const Var numVarsNow = static_cast<Var>(assigns_.size());
  if (elimHead_ >= numVarsNow) elimHead_ = 0;
  const int toScan = std::min(kElimVarsPerRound, static_cast<int>(numVarsNow));
  for (int k = 0; k < toScan && okay_; ++k) {
    if (expired()) return;
    const Var v = elimHead_++;
    if (elimHead_ >= numVarsNow) elimHead_ = 0;
    const auto vi = static_cast<std::size_t>(v);
    if (frozen[vi] || eliminated_[vi] || value(v) != LBool::kUndef) continue;
    const Lit pos(v, false), neg(v, true);
    std::vector<Clause*> posCls, negCls;
    for (Clause* c : occ[static_cast<std::size_t>(pos.code())])
      if (!c->dead && contains(c, pos)) posCls.push_back(c);
    for (Clause* c : occ[static_cast<std::size_t>(neg.code())])
      if (!c->dead && contains(c, neg)) negCls.push_back(c);
    if (posCls.size() > kElimOccCap || negCls.size() > kElimOccCap) continue;
    // Dry run: keep the elimination only if it does not grow the clause
    // count (NiVER-style) and no kept resolvent is excessively long.
    std::vector<std::vector<Lit>> kept;
    const std::size_t limit = posCls.size() + negCls.size();
    bool reject = false;
    for (Clause* p : posCls) {
      for (Clause* q : negCls) {
        if (!makeResolvent(p, q, pos)) continue;
        if (resolvent.empty()) {
          // Resolution is sound independent of the elimination decision:
          // an empty resolvent refutes the formula outright.
          okay_ = false;
          return;
        }
        if (resolvent.size() > kElimMaxResolvent || kept.size() >= limit) {
          reject = true;
          break;
        }
        kept.push_back(resolvent);
      }
      if (reject) break;
    }
    if (reject) continue;
    // Commit: record and remove the clauses on v, drop learnts mentioning
    // it, then add the resolvents.  Removal happens first so propagation
    // from resolvent units can never assign the eliminated variable.
    ElimRecord rec;
    rec.v = v;
    for (Clause* c : posCls) rec.clauses.push_back(c->lits);
    for (Clause* c : negCls) rec.clauses.push_back(c->lits);
    for (Clause* c : posCls) killClause(c);
    for (Clause* c : negCls) killClause(c);
    for (Clause* c : occL[vi])
      if (!c->dead && containsVar(c, v)) killClause(c);
    eliminated_[vi] = true;
    elimIndex_[vi] = static_cast<int>(elimStack_.size());
    elimStack_.push_back(std::move(rec));
    ++stats_.eliminatedVars;
    for (auto& lits : kept) {
      const std::size_t before = clauses_.size();
      if (!addClause(lits)) return;  // root conflict
      if (clauses_.size() > before) {
        // Keep the occurrence lists complete for later candidates: a var
        // must never be eliminated blind to a clause that mentions it.
        Clause* added = clauses_.back();
        for (Lit l : added->lits)
          occ[static_cast<std::size_t>(l.code())].push_back(added);
      }
    }
  }
}

void Solver::restoreVar(Var v) {
  const auto vi = static_cast<std::size_t>(v);
  DFV_CHECK(eliminated_[vi]);
  const int idx = elimIndex_[vi];
  DFV_CHECK(idx >= 0 && static_cast<std::size_t>(idx) < elimStack_.size());
  eliminated_[vi] = false;
  elimIndex_[vi] = -1;
  ElimRecord rec = std::move(elimStack_[static_cast<std::size_t>(idx)]);
  elimStack_[static_cast<std::size_t>(idx)].v = -1;
  elimStack_[static_cast<std::size_t>(idx)].clauses.clear();
  if (!heapContains(v) && value(v) == LBool::kUndef) heapInsert(v);
  // Re-adding may recursively restore other variables those clauses
  // mention; recursion terminates because each step un-eliminates one.
  for (auto& lits : rec.clauses) addClause(std::move(lits));
}

void Solver::extendModel() {
  for (auto it = elimStack_.rbegin(); it != elimStack_.rend(); ++it) {
    if (it->v < 0) continue;
    const auto vi = static_cast<std::size_t>(it->v);
    // Pick the polarity satisfying every stored clause not already
    // satisfied by its other literals.  Processing in reverse elimination
    // order guarantees those other literals are all valued by now, and the
    // resolvents added at elimination time guarantee one polarity works.
    bool needTrue = false;
    bool needFalse = false;
    for (const auto& cl : it->clauses) {
      bool satOther = false;
      bool hasPos = false;
      for (Lit l : cl) {
        if (l.var() == it->v) {
          hasPos = hasPos || !l.negated();
          continue;
        }
        const auto w = static_cast<std::size_t>(l.var());
        if (w < model_.size() && model_[w] != LBool::kUndef &&
            (model_[w] == LBool::kTrue) != l.negated()) {
          satOther = true;
          break;
        }
      }
      if (satOther) continue;
      (hasPos ? needTrue : needFalse) = true;
    }
    DFV_CHECK_MSG(!(needTrue && needFalse),
                  "BVE model extension contradiction on variable " << it->v);
    if (needTrue)
      model_[vi] = LBool::kTrue;
    else if (needFalse || model_[vi] == LBool::kUndef)
      model_[vi] = LBool::kFalse;
  }
}

void Solver::writeDimacs(std::ostream& out) const {
  // Root-level assignments are emitted as unit clauses so the dump is
  // equisatisfiable with the live solver state.
  std::size_t units = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i)
    if (levels_[static_cast<std::size_t>(trail_[i].var())] == 0) ++units;
  out << "p cnf " << numVars() << ' ' << clauses_.size() + units << '\n';
  auto emit = [&out](Lit l) {
    out << (l.negated() ? -(l.var() + 1) : (l.var() + 1));
  };
  for (const Clause* c : clauses_) {
    for (Lit l : c->lits) {
      emit(l);
      out << ' ';
    }
    out << "0\n";
  }
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Lit l = trail_[i];
    if (levels_[static_cast<std::size_t>(l.var())] != 0) continue;
    emit(l);
    out << " 0\n";
  }
}

// ----- order heap -----------------------------------------------------------

void Solver::heapInsert(Var v) {
  DFV_CHECK(!heapContains(v));
  heapPos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapSiftUp(static_cast<int>(heap_.size()) - 1);
}

void Solver::heapUpdate(Var v) {
  heapSiftUp(heapPos_[static_cast<std::size_t>(v)]);
}

Var Solver::heapPop() {
  DFV_CHECK(!heap_.empty());
  const Var top = heap_[0];
  heapPos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heapPos_[static_cast<std::size_t>(heap_[0])] = 0;
    heapSiftDown(0);
  }
  return top;
}

void Solver::heapSiftUp(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heapLess(v, heap_[static_cast<std::size_t>(parent)])) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heapPos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapPos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heapSiftDown(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heapLess(heap_[static_cast<std::size_t>(child + 1)],
                                  heap_[static_cast<std::size_t>(child)]))
      ++child;
    if (!heapLess(heap_[static_cast<std::size_t>(child)], v)) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heapPos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapPos_[static_cast<std::size_t>(v)] = i;
}

}  // namespace dfv::sat
