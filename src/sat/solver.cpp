#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "fault/fault.h"

namespace dfv::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClaDecay = 0.999;
constexpr double kRescaleLimit = 1e100;

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

/// splitmix64: the per-instance deterministic stream behind SolverOptions::
/// seed.  Stateless (mixes seed ^ counter), so variable allocation order is
/// the only input — never the wall clock or a shared RNG.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Solver::Solver() = default;

Solver::Solver(const SolverOptions& options) : options_(options) {
  DFV_CHECK_MSG(options.restartBase > 0, "restartBase must be positive");
  DFV_CHECK_MSG(options.geometricGrowth >= 1.0,
                "geometricGrowth must be >= 1.0");
}

Solver::~Solver() {
  for (Clause* c : clauses_) delete c;
  for (Clause* c : learnts_) delete c;
}

Var Solver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  // Seeded portfolio diversification: initial phase bits and a sub-unit
  // activity jitter (ties in the VSIDS heap break differently per seed;
  // real bumps are >= 1.0 so the jitter never outranks learned activity).
  const std::uint64_t r =
      options_.seed == 0
          ? 0
          : mix64(options_.seed ^ static_cast<std::uint64_t>(v));
  phase_.push_back(options_.seed != 0 && (r & 1) != 0 ? LBool::kTrue
                                                      : LBool::kFalse);
  levels_.push_back(0);
  reasons_.push_back(nullptr);
  activity_.push_back(
      options_.seed == 0
          ? 0.0
          : 1e-9 * static_cast<double>((r >> 1) & 0xffffffULL));
  seen_.push_back(0);
  heapPos_.push_back(-1);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heapInsert(v);
  return v;
}

Lit Solver::trueLit() {
  if (trueLit_.code() < 0) {
    const Var v = newVar();
    trueLit_ = Lit(v, false);
    addClause(trueLit_);
  }
  return trueLit_;
}

bool Solver::addClause(std::vector<Lit> lits) {
  DFV_CHECK_MSG(trailLimits_.empty(), "addClause above decision level 0");
  if (!okay_) return false;
  // Simplify: sort, dedup, drop false lits, detect tautology / true lits.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = Lit::fromCode(-2);
  for (Lit l : lits) {
    DFV_CHECK_MSG(static_cast<std::size_t>(l.var()) < assigns_.size(),
                  "clause uses unallocated variable");
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology
    if (value(l) == LBool::kTrue) return true;
    if (value(l) == LBool::kFalse) continue;  // root-level false: drop lit
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    okay_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], nullptr);
    okay_ = propagate() == nullptr;
    return okay_;
  }
  auto* c = new Clause{std::move(out), 0.0, 0, false};
  clauses_.push_back(c);
  attachClause(c);
  return true;
}

void Solver::attachClause(Clause* c) {
  DFV_CHECK(c->lits.size() >= 2);
  watchesFor(~c->lits[0]).push_back(Watcher{c, c->lits[1]});
  watchesFor(~c->lits[1]).push_back(Watcher{c, c->lits[0]});
}

void Solver::detachClause(Clause* c) {
  for (int i = 0; i < 2; ++i) {
    auto& ws = watchesFor(~c->lits[static_cast<std::size_t>(i)]);
    auto it = std::find_if(ws.begin(), ws.end(),
                           [c](const Watcher& w) { return w.clause == c; });
    DFV_CHECK(it != ws.end());
    ws.erase(it);
  }
}

void Solver::enqueue(Lit l, Clause* reason) {
  DFV_CHECK(value(l) == LBool::kUndef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = lboolOf(!l.negated());
  levels_[v] = static_cast<int>(trailLimits_.size());
  reasons_[v] = reason;
  trail_.push_back(l);
  ++stats_.propagations;
}

Solver::Clause* Solver::propagate() {
  while (propagateHead_ < trail_.size()) {
    const Lit p = trail_[propagateHead_++];
    auto& ws = watchesFor(p);
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause* c = w.clause;
      auto& lits = c->lits;
      // Ensure the false literal (~p) is at position 1.
      const Lit falseLit = ~p;
      if (lits[0] == falseLit) std::swap(lits[0], lits[1]);
      DFV_CHECK(lits[1] == falseLit);
      ++i;
      // If first literal is true, the clause is satisfied.
      if (value(lits[0]) == LBool::kTrue) {
        ws[j++] = Watcher{c, lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool foundWatch = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watchesFor(~lits[1]).push_back(Watcher{c, lits[0]});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;
      // Clause is unit or conflicting.
      ws[j++] = Watcher{c, lits[0]};
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: copy remaining watchers back and bail out.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagateHead_ = trail_.size();
        return c;
      }
      enqueue(lits[0], c);
    }
    ws.resize(j);
  }
  return nullptr;
}

std::uint32_t Solver::computeLbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels; small LBD = high-quality clause.
  std::vector<int> lvls;
  lvls.reserve(lits.size());
  for (Lit l : lits) lvls.push_back(level(l.var()));
  std::sort(lvls.begin(), lvls.end());
  return static_cast<std::uint32_t>(
      std::unique(lvls.begin(), lvls.end()) - lvls.begin());
}

void Solver::analyze(Clause* conflict, std::vector<Lit>& learnt,
                     int& backtrackLevel, std::uint32_t& lbd) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  int pathCount = 0;
  Lit p = Lit();
  std::size_t index = trail_.size();
  Clause* reason = conflict;

  do {
    DFV_CHECK(reason != nullptr);
    if (reason->learnt) claBumpActivity(reason);
    for (std::size_t k = (p == Lit() ? 0 : 1); k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const auto qv = static_cast<std::size_t>(q.var());
      if (!seen_[qv] && level(q.var()) > 0) {
        seen_[qv] = 1;
        varBumpActivity(q.var());
        if (level(q.var()) >= static_cast<int>(trailLimits_.size())) {
          ++pathCount;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Next literal on the trail that is marked seen.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    --index;
    p = trail_[index];
    reason = reasons_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --pathCount;
  } while (pathCount > 0);
  learnt[0] = ~p;

  // Clause minimization: drop literals implied by the rest of the clause.
  analyzeToClear_ = learnt;
  std::uint32_t abstractLevels = 0;
  for (std::size_t k = 1; k < learnt.size(); ++k)
    abstractLevels |= 1u << (level(learnt[k].var()) & 31);
  std::size_t keep = 1;
  for (std::size_t k = 1; k < learnt.size(); ++k) {
    const auto v = static_cast<std::size_t>(learnt[k].var());
    if (reasons_[v] == nullptr || !litRedundant(learnt[k], abstractLevels))
      learnt[keep++] = learnt[k];
  }
  learnt.resize(keep);
  for (Lit l : analyzeToClear_) seen_[static_cast<std::size_t>(l.var())] = 0;
  for (Lit l : learnt) seen_[static_cast<std::size_t>(l.var())] = 0;

  // Backtrack level: second-highest level in the clause.
  if (learnt.size() == 1) {
    backtrackLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k)
      if (level(learnt[k].var()) > level(learnt[maxI].var())) maxI = k;
    std::swap(learnt[1], learnt[maxI]);
    backtrackLevel = level(learnt[1].var());
  }
  lbd = computeLbd(learnt);
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  const std::size_t clearTop = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit cur = analyzeStack_.back();
    analyzeStack_.pop_back();
    Clause* reason = reasons_[static_cast<std::size_t>(cur.var())];
    DFV_CHECK(reason != nullptr);
    for (std::size_t k = 1; k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level(q.var()) == 0) continue;
      if (reasons_[qv] == nullptr ||
          ((1u << (level(q.var()) & 31)) & abstractLevels) == 0) {
        // Not removable: undo marks made during this check.
        for (std::size_t m = clearTop; m < analyzeToClear_.size(); ++m)
          seen_[static_cast<std::size_t>(analyzeToClear_[m].var())] = 0;
        analyzeToClear_.resize(clearTop);
        return false;
      }
      seen_[qv] = 1;
      analyzeStack_.push_back(q);
      analyzeToClear_.push_back(q);
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p, std::vector<Lit>& outConflict) {
  outConflict.clear();
  outConflict.push_back(p);
  if (trailLimits_.empty()) return;
  seen_[static_cast<std::size_t>(p.var())] = 1;
  for (std::size_t i = trail_.size(); i-- > trailLimits_[0];) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (!seen_[v]) continue;
    if (reasons_[v] == nullptr) {
      DFV_CHECK(level(trail_[i].var()) > 0);
      outConflict.push_back(~trail_[i]);
    } else {
      for (std::size_t k = 1; k < reasons_[v]->lits.size(); ++k) {
        const Lit q = reasons_[v]->lits[k];
        if (level(q.var()) > 0) seen_[static_cast<std::size_t>(q.var())] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(p.var())] = 0;
}

void Solver::backtrackTo(int lvl) {
  if (static_cast<int>(trailLimits_.size()) <= lvl) return;
  const std::size_t bound = trailLimits_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (options_.phaseSaving) phase_[v] = assigns_[v];  // phase saving
    assigns_[v] = LBool::kUndef;
    reasons_[v] = nullptr;
    if (!heapContains(trail_[i].var())) heapInsert(trail_[i].var());
  }
  trail_.resize(bound);
  trailLimits_.resize(static_cast<std::size_t>(lvl));
  propagateHead_ = trail_.size();
}

Lit Solver::pickBranchLit() {
  while (true) {
    if (heap_.empty()) return Lit();
    const Var v = heapPop();
    if (value(v) == LBool::kUndef) {
      ++stats_.decisions;
      return Lit(v, phase_[static_cast<std::size_t>(v)] == LBool::kFalse);
    }
  }
}

void Solver::varBumpActivity(Var v) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act += varInc_;
  if (act > kRescaleLimit) {
    for (auto& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapContains(v)) heapUpdate(v);
}

void Solver::varDecayActivity() { varInc_ /= kVarDecay; }

void Solver::claBumpActivity(Clause* c) {
  c->activity += claInc_;
  if (c->activity > kRescaleLimit) {
    for (Clause* lc : learnts_) lc->activity *= 1e-100;
    claInc_ *= 1e-100;
  }
}

void Solver::claDecayActivity() { claInc_ /= kClaDecay; }

void Solver::reduceDb() {
  // Keep the better half of learnt clauses; never delete reason clauses or
  // clauses with very small LBD.
  std::sort(learnts_.begin(), learnts_.end(), [](Clause* a, Clause* b) {
    if (a->lbd != b->lbd) return a->lbd > b->lbd;
    return a->activity < b->activity;
  });
  auto isReason = [this](Clause* c) {
    const Lit first = c->lits[0];
    return value(first) == LBool::kTrue &&
           reasons_[static_cast<std::size_t>(first.var())] == c;
  };
  std::vector<Clause*> kept;
  kept.reserve(learnts_.size());
  const std::size_t dropTarget = learnts_.size() / 2;
  std::size_t dropped = 0;
  for (Clause* c : learnts_) {
    if (dropped < dropTarget && c->lbd > 2 && c->lits.size() > 2 &&
        !isReason(c)) {
      detachClause(c);
      delete c;
      ++dropped;
      ++stats_.deletedClauses;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     const Budget& budget) {
  budget.validate();
  conflict_.clear();
  model_.clear();
  // Fault-injection site: every solve call passes through here, so armed
  // policies can model a crashing solver (throw), a solver that gives up
  // for no reason (spurious kUnknown), or a budget that expires before any
  // work is done.  With no injector installed this is one pointer load.
  switch (fault::onSiteHit(fault::Site::kSolverSolve)) {
    case fault::Policy::kThrowCheckError:
      fault::throwInjected(fault::Site::kSolverSolve);
    case fault::Policy::kSpuriousUnknown:
      return Result::kUnknown;
    case fault::Policy::kExhaustBudget:
      // Only a budgeted call may legitimately return kUnknown (see Result);
      // injected early exhaustion respects that contract.
      if (!budget.unlimited()) return Result::kUnknown;
      break;
    default:
      break;
  }
  if (!okay_) return Result::kUnsat;
  for (Lit a : assumptions)
    DFV_CHECK_MSG(static_cast<std::size_t>(a.var()) < assigns_.size(),
                  "assumption uses unallocated variable");

  // Budget accounting is relative to this call; cumulative stats_ provide
  // the baselines.  The wall clock is sampled only every few conflicts /
  // decisions so an unlimited run pays nothing for the feature.
  const std::uint64_t conflicts0 = stats_.conflicts;
  const std::uint64_t propagations0 = stats_.propagations;
  const auto wallStart = std::chrono::steady_clock::now();
  std::uint32_t budgetTick = 0;
  auto budgetExpired = [&]() -> bool {
    if (budget.cancelled()) return true;
    if (budget.maxConflicts != 0 &&
        stats_.conflicts - conflicts0 >=
            static_cast<std::uint64_t>(budget.maxConflicts))
      return true;
    if (budget.maxPropagations != 0 &&
        stats_.propagations - propagations0 >=
            static_cast<std::uint64_t>(budget.maxPropagations))
      return true;
    if (budget.maxSeconds > 0.0 && (++budgetTick & 63u) == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wallStart)
              .count();
      if (elapsed >= budget.maxSeconds) return true;
    }
    return false;
  };

  auto restartLimit = [this](int n) -> std::uint64_t {
    const double base = static_cast<double>(options_.restartBase);
    if (options_.restartPolicy == RestartPolicy::kGeometric)
      return static_cast<std::uint64_t>(
          base * std::pow(options_.geometricGrowth, n));
    return static_cast<std::uint64_t>(luby(2.0, n) * base);
  };
  int restartCount = 0;
  std::uint64_t conflictBudget = restartLimit(restartCount);
  std::uint64_t conflictsThisRestart = 0;
  std::size_t maxLearnts = clauses_.size() / 3 + 1000;

  for (;;) {
    Clause* confl = propagate();
    if (confl != nullptr) {
      ++stats_.conflicts;
      ++conflictsThisRestart;
      if (trailLimits_.empty()) {
        okay_ = false;
        return Result::kUnsat;  // conflict at root level
      }
      std::vector<Lit> learnt;
      int btLevel;
      std::uint32_t lbd;
      analyze(confl, learnt, btLevel, lbd);
      backtrackTo(btLevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], nullptr);
      } else {
        auto* c = new Clause{std::move(learnt), 0.0, lbd, true};
        learnts_.push_back(c);
        ++stats_.learntClauses;
        attachClause(c);
        claBumpActivity(c);
        enqueue(c->lits[0], c);
      }
      varDecayActivity();
      claDecayActivity();
      if (!budget.unlimited() && budgetExpired()) {
        backtrackTo(0);
        return Result::kUnknown;
      }
      continue;
    }

    // No conflict.
    if (!budget.unlimited() && budgetExpired()) {
      backtrackTo(0);
      return Result::kUnknown;
    }
    if (conflictsThisRestart >= conflictBudget) {
      ++stats_.restarts;
      ++restartCount;
      conflictsThisRestart = 0;
      conflictBudget = restartLimit(restartCount);
      backtrackTo(0);
      continue;
    }
    if (learnts_.size() >= maxLearnts) {
      reduceDb();
      maxLearnts = maxLearnts * 11 / 10;
    }

    // Decide: assumptions first, then VSIDS.
    Lit next = Lit();
    while (trailLimits_.size() < assumptions.size()) {
      const Lit a = assumptions[trailLimits_.size()];
      if (value(a) == LBool::kTrue) {
        trailLimits_.push_back(trail_.size());  // dummy level
      } else if (value(a) == LBool::kFalse) {
        analyzeFinal(~a, conflict_);
        backtrackTo(0);
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == Lit()) next = pickBranchLit();
    if (next == Lit()) {
      // All variables assigned: model found.
      model_.assign(assigns_.begin(), assigns_.end());
      backtrackTo(0);
      return Result::kSat;
    }
    trailLimits_.push_back(trail_.size());
    enqueue(next, nullptr);
  }
}

void Solver::writeDimacs(std::ostream& out) const {
  // Root-level assignments are emitted as unit clauses so the dump is
  // equisatisfiable with the live solver state.
  std::size_t units = 0;
  for (std::size_t i = 0; i < trail_.size(); ++i)
    if (levels_[static_cast<std::size_t>(trail_[i].var())] == 0) ++units;
  out << "p cnf " << numVars() << ' ' << clauses_.size() + units << '\n';
  auto emit = [&out](Lit l) {
    out << (l.negated() ? -(l.var() + 1) : (l.var() + 1));
  };
  for (const Clause* c : clauses_) {
    for (Lit l : c->lits) {
      emit(l);
      out << ' ';
    }
    out << "0\n";
  }
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Lit l = trail_[i];
    if (levels_[static_cast<std::size_t>(l.var())] != 0) continue;
    emit(l);
    out << " 0\n";
  }
}

// ----- order heap -----------------------------------------------------------

void Solver::heapInsert(Var v) {
  DFV_CHECK(!heapContains(v));
  heapPos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapSiftUp(static_cast<int>(heap_.size()) - 1);
}

void Solver::heapUpdate(Var v) {
  heapSiftUp(heapPos_[static_cast<std::size_t>(v)]);
}

Var Solver::heapPop() {
  DFV_CHECK(!heap_.empty());
  const Var top = heap_[0];
  heapPos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heapPos_[static_cast<std::size_t>(heap_[0])] = 0;
    heapSiftDown(0);
  }
  return top;
}

void Solver::heapSiftUp(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heapLess(v, heap_[static_cast<std::size_t>(parent)])) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heapPos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapPos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heapSiftDown(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heapLess(heap_[static_cast<std::size_t>(child + 1)],
                                  heap_[static_cast<std::size_t>(child)]))
      ++child;
    if (!heapLess(heap_[static_cast<std::size_t>(child)], v)) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heapPos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heapPos_[static_cast<std::size_t>(v)] = i;
}

}  // namespace dfv::sat
