// Resilient plan execution: retry ladders and graceful degradation.
//
// VerificationPlan (core/plan.h) runs each block's verifier exactly once and
// records what happened.  In a long-running CI flow that is not enough: a
// SEC run that exhausts its budget is *inconclusive*, not wrong, and the
// right reaction is usually "try again with a bigger budget", then — if the
// proof never closes — "fall back to co-simulation and say so".  §4.1 of the
// paper makes plan-level robustness the point of the methodology: one
// stubborn block must not stall the consistency signal for every other
// block.
//
// ResilientRunner implements that reaction as policy, not ad-hoc code:
//   * exception isolation — a runner that throws becomes a structured
//     faulted BlockResult; the plan keeps going (same contract as
//     VerificationPlan, shared via runEntry's try/catch);
//   * a retry ladder — kInconclusive SEC verdicts are retried with
//     geometrically escalated sat::Budget caps, optionally toggling
//     fraig/absint per rung, every attempt logged in
//     BlockResult::attemptLog;
//   * graceful degradation — when the ladder tops out, an attached cosim
//     fallback runs seeded random stimulus through both models and the
//     block is reported with degraded=true: weaker evidence, clearly
//     labeled, never cached as clean.
//
// All resilience is deterministic: budgets are conflict/propagation caps,
// fallback stimulus is seeded, and fault injection (src/fault) is a pure
// function of (seed, site, hit) — so a CI failure reproduces locally.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/plan.h"
#include "sec/engine.h"
#include "sec/transaction.h"

namespace dfv::core {

class Journal;
struct JournalLoaded;

/// One escalation step of the retry ladder.  `budgetScale` multiplies the
/// *previous* attempt's conflict/propagation/seconds caps (unlimited caps
/// stay unlimited); `fraig`/`absint`/`invariants`, when set, override the
/// corresponding SecOptions toggle from this rung on.  An `invariants`
/// rung is the natural rescue between budget escalation and cosim
/// degradation: when the inductive step keeps failing, certified
/// strengthening often closes it outright instead of buying more solver
/// time.
struct RetryRung {
  double budgetScale = 4.0;
  std::optional<bool> fraig;
  std::optional<bool> absint;
  std::optional<bool> invariants;
};

/// How inconclusive SEC blocks are retried and degraded.
struct RetryPolicy {
  /// Total attempts per block, including the first (base-options) one.
  unsigned maxAttempts = 3;
  /// Escalation factor used when `rungs` is empty: attempt i runs with the
  /// base caps scaled by budgetScale^i.
  double budgetScale = 4.0;
  /// Explicit ladder; entry i configures attempt i+1.  When shorter than
  /// maxAttempts-1, the last rung repeats.  Overrides `budgetScale`.
  std::vector<RetryRung> rungs;
  /// Also climb the ladder when BMC finished but the inductive step was cut
  /// off: the bounded verdict is already a sound pass, so this retry only
  /// chases the upgrade to proven-equivalent (and the block passes either
  /// way).  Never triggers degradation.
  bool retryInductionCutoff = true;
  /// Seed handed to the cosim fallback of degraded blocks.
  std::uint64_t cosimSeed = 0x5eedfa11;
};

/// A VerificationPlan-shaped runner with retry and degradation policy.
/// Produces the same PlanReport/BlockResult types, with attempts,
/// attemptLog, degraded, faulted and faultInjections populated.
class ResilientRunner {
 public:
  using CosimOutcome = VerificationPlan::CosimOutcome;
  /// SEC runners take the options to use *this attempt* — the ladder
  /// rescales budgets and toggles between calls.
  using SecRunner = std::function<sec::SecResult(const sec::SecOptions&)>;
  /// Cosim runners (and fallbacks) take the stimulus seed to use.
  using CosimRunner = std::function<CosimOutcome(std::uint64_t seed)>;

  explicit ResilientRunner(std::string name, RetryPolicy policy = {})
      : name_(std::move(name)), policy_(std::move(policy)) {}

  /// Registers a SEC block.  `baseOptions` is attempt 0's configuration;
  /// later attempts derive from it per the RetryPolicy.
  void addSecBlock(const std::string& block, std::uint64_t digest,
                   sec::SecOptions baseOptions, SecRunner runner);

  /// Registers a cosim-verified block (no ladder: one attempt, isolated).
  void addCosimBlock(const std::string& block, std::uint64_t digest,
                     CosimRunner runner);

  /// Attaches the degradation fallback to a SEC block: runs only when every
  /// ladder attempt came back inconclusive.  Unknown block throws.
  void setCosimFallback(const std::string& block, CosimRunner fallback);

  /// Updates a block's digest (models edited).  Unknown block throws.
  void touch(const std::string& block, std::uint64_t newDigest);

  /// Runs independent blocks concurrently on `exec` (borrowed; must outlive
  /// every run; nullptr restores serial execution).  Each block task
  /// installs a fresh clone of the calling thread's fault injector, so a
  /// block's injection schedule is the same whatever worker runs it — note
  /// this intentionally differs from a serial run, where all blocks share
  /// one hit stream.  Reports keep registration order and record the
  /// worker count; block runners must not share mutable state with each
  /// other (ir::Context interning is already thread-safe).
  void setExecutor(ParallelExecutor* exec) { exec_ = exec; }

  /// Enables portfolio racing for SEC blocks: every ladder attempt builds
  /// buildPortfolio(attemptOptions, opts) and races the members on the
  /// executor, recording one AttemptRecord per member and the winner in
  /// BlockResult::portfolioWinner.  Requires a non-null executor to take
  /// effect; members <= 1 disables racing.
  void setPortfolio(PortfolioOptions opts) {
    portfolio_ = opts;
    portfolioEnabled_ = true;
  }

  /// Attaches a write-ahead journal (borrowed; must outlive every run):
  /// every completed block appends one record — from worker threads under
  /// an executor (the journal serializes internally).  Journal I/O
  /// failures never affect verdicts; the run continues unjournaled.
  void setJournal(Journal* journal) { journal_ = journal; }

  /// Replays a loaded journal (see VerificationPlan::resumePlan for the
  /// admission rules — same predicate, isResumableVerdict, same
  /// cold-start-on-mismatch semantics).  Returns the admitted count.
  unsigned resumePlan(const JournalLoaded& loaded);

  /// Verifies every block unconditionally.  Never throws for runner
  /// failures — they surface as faulted BlockResults.
  PlanReport runAll();

  /// Skips blocks whose digest is unchanged since their last clean,
  /// full-strength pass.  Faulted, degraded and inconclusive blocks are
  /// never treated as clean, so they always rerun.
  PlanReport runIncremental();

  const std::string& name() const { return name_; }
  const RetryPolicy& policy() const { return policy_; }
  std::size_t blockCount() const { return blocks_.size(); }

 private:
  struct Entry {
    std::string block;
    Method method = Method::kSec;
    std::uint64_t digest = 0;
    sec::SecOptions baseOptions;
    SecRunner secRunner;
    CosimRunner cosimRunner;   ///< primary for kCosim, fallback for kSec
    std::optional<std::uint64_t> lastCleanDigest;
    std::string lastDetail;
    // Journal-admitted result, consumed (once) by the next run.
    std::optional<BlockResult> resumedResult;
  };

  BlockResult runEntry(Entry& e);
  PlanReport run(bool incremental);
  Entry& find(const std::string& block);
  std::uint64_t entryFingerprint(const Entry& e) const;
  void journalAppend(const Entry& e, const BlockResult& r);

  std::string name_;
  RetryPolicy policy_;
  std::vector<Entry> blocks_;
  ParallelExecutor* exec_ = nullptr;  ///< borrowed; nullptr = serial
  PortfolioOptions portfolio_{};
  bool portfolioEnabled_ = false;
  Journal* journal_ = nullptr;  ///< borrowed; nullptr = unjournaled
};

/// Builds a degradation fallback from the SEC problem itself: drives
/// `transactions` seeded random transactions (rejection-sampled against the
/// problem's input constraints) through both sides' interpreters via the
/// problem's input bindings, and compares every OutputCheck sample.  The
/// returned callable captures `problem` by reference — it must outlive the
/// runner.  This is the paper's co-simulation methodology (§3) reused as a
/// safety net: far weaker than SEC, but it still catches gross divergence
/// and it always terminates.
ResilientRunner::CosimRunner makeRandomCosimFallback(
    const sec::SecProblem& problem, unsigned transactions);

}  // namespace dfv::core
