#include "core/report.h"

#include <sstream>

#include "drc/diagnostics.h"

namespace dfv::core {

using drc::jsonEscape;

std::string toJson(const std::string& planName, const PlanReport& report) {
  std::ostringstream os;
  os << "{\"plan\":\"" << jsonEscape(planName) << "\",";
  os << "\"summary\":{\"verified\":" << report.verified
     << ",\"skipped\":" << report.skipped << ",\"failed\":" << report.failed
     << ",\"inconclusive\":" << report.inconclusive
     << ",\"blocked\":" << report.blocked
     << ",\"faulted\":" << report.faulted
     << ",\"degraded\":" << report.degraded;
  // Emitted only when nonzero so pre-journal reports stay byte-identical.
  if (report.resumed > 0) os << ",\"resumed\":" << report.resumed;
  os << ",\"workers\":" << report.workers
     << ",\"total_seconds\":" << report.totalSeconds
     << ",\"all_passed\":" << (report.allPassed() ? "true" : "false") << "},";
  os << "\"blocks\":[";
  for (std::size_t i = 0; i < report.blocks.size(); ++i) {
    const BlockResult& b = report.blocks[i];
    if (i > 0) os << ',';
    const char* status = b.skippedUnchanged ? "skipped"
                         : b.blockedByDrc   ? "blocked"
                         : b.faulted        ? "faulted"
                         : b.inconclusive   ? "inconclusive"
                         : b.passed         ? "pass"
                                            : "fail";
    os << "{\"name\":\"" << jsonEscape(b.block) << "\",\"method\":\""
       << (b.method == Method::kSec ? "sec" : "cosim") << "\",\"status\":\""
       << status << "\",\"seconds\":" << b.seconds
       << ",\"attempts\":" << b.attempts
       << ",\"degraded\":" << (b.degraded ? "true" : "false")
       << ",\"faulted\":" << (b.faulted ? "true" : "false")
       << ",\"fault_injections\":" << b.faultInjections;
    if (b.resumed) os << ",\"resumed\":true";
    os << ",\"slice_states_severed\":" << b.sliceStatesSevered
       << ",\"slice_seq_constants\":" << b.sliceSeqConstants
       << ",\"inv_certified\":" << b.invCertified
       << ",\"detail\":\"" << jsonEscape(b.detail) << "\"";
    if (b.portfolioWinner >= 0) {
      os << ",\"portfolio_winner\":" << b.portfolioWinner
         << ",\"portfolio_winner_name\":\""
         << jsonEscape(b.portfolioWinnerName) << "\"";
    }
    if (!b.attemptLog.empty()) {
      os << ",\"attempt_log\":[";
      for (std::size_t a = 0; a < b.attemptLog.size(); ++a) {
        const AttemptRecord& rec = b.attemptLog[a];
        if (a > 0) os << ',';
        os << "{\"rung\":" << rec.rung
           << ",\"max_conflicts\":" << rec.maxConflicts
           << ",\"max_propagations\":" << rec.maxPropagations
           << ",\"outcome\":\"" << jsonEscape(rec.outcome)
           << "\",\"faulted\":" << (rec.faulted ? "true" : "false")
           << ",\"seconds\":" << rec.seconds;
        if (rec.member >= 0) {
          os << ",\"member\":" << rec.member << ",\"member_name\":\""
             << jsonEscape(rec.memberName)
             << "\",\"winner\":" << (rec.winner ? "true" : "false")
             << ",\"cancelled\":" << (rec.cancelled ? "true" : "false");
        }
        os << ",\"sat_conflicts\":" << rec.satConflicts
           << ",\"sat_decisions\":" << rec.satDecisions
           << ",\"sat_learnts\":" << rec.satLearnts
           << ",\"sat_subsumed\":" << rec.satSubsumed
           << ",\"sat_vivified\":" << rec.satVivified
           << ",\"sat_eliminated_vars\":" << rec.satEliminatedVars
           << ",\"rewrite_saved_nodes\":" << rec.rewriteSavedNodes
           << ",\"inv_candidates\":" << rec.invCandidates
           << ",\"inv_certified\":" << rec.invCertified
           << ",\"aig_nodes\":" << rec.aigNodes << "}";
      }
      os << "]";
    }
    if (b.drc.has_value()) os << ",\"drc\":" << b.drc->toJson();
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string PlanReport::json(const std::string& planName) const {
  return toJson(planName, *this);
}

}  // namespace dfv::core
