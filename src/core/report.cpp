#include "core/report.h"

#include <sstream>

#include "drc/diagnostics.h"

namespace dfv::core {

using drc::jsonEscape;

std::string toJson(const std::string& planName, const PlanReport& report) {
  std::ostringstream os;
  os << "{\"plan\":\"" << jsonEscape(planName) << "\",";
  os << "\"summary\":{\"verified\":" << report.verified
     << ",\"skipped\":" << report.skipped << ",\"failed\":" << report.failed
     << ",\"inconclusive\":" << report.inconclusive
     << ",\"blocked\":" << report.blocked
     << ",\"total_seconds\":" << report.totalSeconds
     << ",\"all_passed\":" << (report.allPassed() ? "true" : "false") << "},";
  os << "\"blocks\":[";
  for (std::size_t i = 0; i < report.blocks.size(); ++i) {
    const BlockResult& b = report.blocks[i];
    if (i > 0) os << ',';
    const char* status = b.skippedUnchanged ? "skipped"
                         : b.blockedByDrc   ? "blocked"
                         : b.inconclusive   ? "inconclusive"
                         : b.passed         ? "pass"
                                            : "fail";
    os << "{\"name\":\"" << jsonEscape(b.block) << "\",\"method\":\""
       << (b.method == Method::kSec ? "sec" : "cosim") << "\",\"status\":\""
       << status << "\",\"seconds\":" << b.seconds << ",\"detail\":\""
       << jsonEscape(b.detail) << "\"";
    if (b.drc.has_value()) os << ",\"drc\":" << b.drc->toJson();
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dfv::core
