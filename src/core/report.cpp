#include "core/report.h"

#include <sstream>

namespace dfv::core {

namespace {
/// Escapes a string for a JSON value (the characters our details can hold).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string toJson(const std::string& planName, const PlanReport& report) {
  std::ostringstream os;
  os << "{\"plan\":\"" << jsonEscape(planName) << "\",";
  os << "\"summary\":{\"verified\":" << report.verified
     << ",\"skipped\":" << report.skipped << ",\"failed\":" << report.failed
     << ",\"total_seconds\":" << report.totalSeconds
     << ",\"all_passed\":" << (report.allPassed() ? "true" : "false") << "},";
  os << "\"blocks\":[";
  for (std::size_t i = 0; i < report.blocks.size(); ++i) {
    const BlockResult& b = report.blocks[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << jsonEscape(b.block) << "\",\"method\":\""
       << (b.method == Method::kSec ? "sec" : "cosim") << "\",\"status\":\""
       << (b.skippedUnchanged ? "skipped" : (b.passed ? "pass" : "fail"))
       << "\",\"seconds\":" << b.seconds << ",\"detail\":\""
       << jsonEscape(b.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dfv::core
