#include "core/parallel.h"

#include <chrono>
#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "fault/fault.h"

namespace dfv::core {

// ----- ParallelExecutor ------------------------------------------------------

namespace {

// Which executor/worker the current thread belongs to.  A worker thread
// serves exactly one executor for its lifetime; external threads (and the
// helping thread inside wait()) keep the {nullptr, 0} default.
struct WorkerIdentity {
  const ParallelExecutor* executor = nullptr;
  unsigned index = 0;
};
thread_local WorkerIdentity t_worker;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ParallelExecutor::ParallelExecutor(unsigned workers) {
  unsigned n = workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  deques_.resize(n);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { workerLoop(i); });
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  DFV_CHECK_MSG(pendingTotal_.load() == 0,
                "ParallelExecutor destroyed with "
                    << pendingTotal_.load()
                    << " pending task(s): wait() every TaskGroup first");
}

void ParallelExecutor::submit(TaskGroup& group, std::function<void()> fn) {
  DFV_CHECK_MSG(fn != nullptr, "null task");
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  pendingTotal_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(mu_);
    DFV_CHECK_MSG(!shutdown_, "submit after executor shutdown");
    if (t_worker.executor == this)
      deques_[t_worker.index].push_back(Task{&group, std::move(fn)});
    else
      inbox_.push_back(Task{&group, std::move(fn)});
  }
  // notify_all, not notify_one: a helper sleeping inside wait() and an idle
  // worker are interchangeable consumers; waking only one could pick a
  // thread whose wake predicate rejects this task and strand it briefly.
  cv_.notify_all();
}

bool ParallelExecutor::popTask(unsigned index, Task& out) {
  // Own deque, newest first: depth-first execution of nested spawns.
  if (index < deques_.size() && !deques_[index].empty()) {
    out = std::move(deques_[index].back());
    deques_[index].pop_back();
    return true;
  }
  // Global inbox, oldest first: external submissions run in order.
  if (!inbox_.empty()) {
    out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }
  // Steal from the other workers, oldest first (their deque front is the
  // coarsest-grained work — the classic work-stealing heuristic).
  const unsigned n = static_cast<unsigned>(deques_.size());
  for (unsigned k = 1; k <= n; ++k) {
    const unsigned victim = (index + k) % n;
    if (victim == index || deques_[victim].empty()) continue;
    out = std::move(deques_[victim].front());
    deques_[victim].pop_front();
    return true;
  }
  return false;
}

void ParallelExecutor::runTask(Task task) {
  TaskGroup* group = task.group;
  try {
    task.fn();
  } catch (...) {
    std::scoped_lock lock(group->mu_);
    if (!group->exception_) group->exception_ = std::current_exception();
  }
  task.fn = nullptr;  // destroy captures before the completion signal
  group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  pendingTotal_.fetch_sub(1, std::memory_order_acq_rel);
  // Wake waiters.  The lock/unlock pairs the counter update with the cv_
  // predicate checks: a wait() that read the old count under mu_ is blocked
  // by the time we acquire it, so the notify cannot be lost.
  { std::scoped_lock lock(mu_); }
  cv_.notify_all();
}

void ParallelExecutor::workerLoop(unsigned index) {
  t_worker = WorkerIdentity{this, index};
  std::unique_lock lock(mu_);
  for (;;) {
    Task task;
    if (popTask(index, task)) {
      lock.unlock();
      runTask(std::move(task));
      lock.lock();
      continue;
    }
    if (shutdown_) return;
    cv_.wait(lock);
  }
}

void ParallelExecutor::wait(TaskGroup& group) {
  // Helping wait: run pending tasks (any group's) instead of blocking, so a
  // task that spawns subtasks and waits cannot starve the fixed-size pool.
  // A worker thread helps from its own identity (own deque first); an
  // external thread helps as a pure thief.
  const unsigned helperIndex = t_worker.executor == this
                                   ? t_worker.index
                                   : static_cast<unsigned>(deques_.size());
  std::unique_lock lock(mu_);
  while (group.pending_.load(std::memory_order_acquire) != 0) {
    Task task;
    if (popTask(helperIndex, task)) {
      lock.unlock();
      runTask(std::move(task));
      lock.lock();
      continue;
    }
    // Nothing runnable: the group's remaining tasks are in flight on other
    // threads.  Sleep until a completion or a new submission wakes us.
    auto hasWorkLocked = [&] {
      if (!inbox_.empty()) return true;
      for (const auto& d : deques_)
        if (!d.empty()) return true;
      return false;
    };
    cv_.wait(lock, [&] {
      return group.pending_.load(std::memory_order_acquire) == 0 ||
             hasWorkLocked() || shutdown_;
    });
    DFV_CHECK_MSG(!shutdown_ ||
                      group.pending_.load(std::memory_order_acquire) == 0,
                  "executor shut down while a TaskGroup was pending");
  }
  lock.unlock();
  std::exception_ptr rethrow;
  {
    std::scoped_lock glock(group.mu_);
    rethrow = std::exchange(group.exception_, nullptr);
  }
  if (rethrow) std::rethrow_exception(rethrow);
}

// ----- Portfolio -------------------------------------------------------------

std::vector<PortfolioMember> buildPortfolio(const sec::SecOptions& base,
                                            const PortfolioOptions& opts) {
  DFV_CHECK_MSG(opts.members >= 1, "a portfolio needs at least one member");
  std::vector<PortfolioMember> members;
  members.reserve(opts.members);
  members.push_back(PortfolioMember{0, "base", base});
  for (unsigned i = 1; i < opts.members; ++i) {
    PortfolioMember m;
    m.index = i;
    m.options = base;
    std::ostringstream name;
    name << "m" << i;
    // Deterministic diversification: the low bits of (i-1) select which
    // heuristics flip, so successive members cycle through the combinations
    // in a fixed order; the seed varies on every member when enabled.
    const unsigned k = i - 1;
    if (opts.varySeed) {
      m.options.solver.seed = opts.seedBase + i;
      m.options.fraigOptions.seed = opts.seedBase + i;
      name << ":seed" << i;
    }
    if (opts.varyRestartPolicy && (k & 1u) != 0) {
      m.options.solver.restartPolicy = sat::RestartPolicy::kGeometric;
      name << ":geom";
    }
    if (opts.varyPhaseSaving && (k & 2u) != 0) {
      m.options.solver.phaseSaving = false;
      name << ":nophase";
    }
    if (opts.varyFraig && (k & 4u) != 0) {
      m.options.fraig = !base.fraig;
      name << (m.options.fraig ? ":fraig" : ":nofraig");
    }
    if (opts.varyRewrite && (k & 8u) != 0) {
      m.options.rewrite = !base.rewrite;
      name << (m.options.rewrite ? ":rewrite" : ":norewrite");
    }
    if (opts.varyInprocess && (k & 16u) != 0) {
      m.options.solver.inprocess = !base.solver.inprocess;
      name << (m.options.solver.inprocess ? ":inprocess" : ":noinprocess");
    }
    m.name = name.str();
    members.push_back(std::move(m));
  }
  return members;
}

PortfolioOutcome racePortfolio(
    ParallelExecutor& exec, const std::vector<PortfolioMember>& members,
    const std::function<sec::SecResult(const sec::SecOptions&)>& runner) {
  DFV_CHECK_MSG(!members.empty(), "empty portfolio");
  DFV_CHECK_MSG(runner != nullptr, "null runner");
  PortfolioOutcome outcome;
  outcome.attempts.resize(members.size());
  std::atomic<bool> cancelFlag{false};
  std::atomic<int> winner{-1};
  const fault::Injector* proto = fault::currentInjector();

  ParallelExecutor::TaskGroup group;
  for (std::size_t i = 0; i < members.size(); ++i) {
    exec.submit(group, [&, i] {
      MemberAttempt& a = outcome.attempts[i];
      a.index = members[i].index;
      a.name = members[i].name;
      // Each racer replays the caller's injection schedule from hit zero on
      // its own thread — (seed, site, hit) purity per member.
      std::optional<fault::ScopedInjector> si;
      if (proto != nullptr) si.emplace(*proto);
      sec::SecOptions o = members[i].options;
      o.bmcBudget.cancel = &cancelFlag;
      o.inductionBudget.cancel = &cancelFlag;
      o.fraigOptions.candidateBudget.cancel = &cancelFlag;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        a.result = runner(o);
        if (a.result.verdict != sec::Verdict::kInconclusive) {
          int expected = -1;
          if (winner.compare_exchange_strong(expected, static_cast<int>(i)))
            cancelFlag.store(true, std::memory_order_release);
        } else {
          a.cancelled = cancelFlag.load(std::memory_order_acquire);
        }
      } catch (const std::exception& ex) {
        a.faulted = true;
        a.error = ex.what();
      }
      a.seconds = secondsSince(t0);
      if (si.has_value()) a.faultInjections = si->injector().totalInjections();
    });
  }
  exec.wait(group);
  outcome.winner = winner.load();
  return outcome;
}

// ----- Depth-split parallel BMC ----------------------------------------------

sec::SecResult checkBmcParallel(ParallelExecutor& exec,
                                const sec::SecProblem& problem,
                                const sec::SecOptions& options) {
  options.bmcBudget.validate();
  options.inductionBudget.validate();
  DFV_CHECK_MSG(options.bmcStartTransaction == 0,
                "checkBmcParallel owns the depth split; leave "
                "bmcStartTransaction at 0");
  const unsigned bound = options.boundTransactions;
  if (bound <= 1 && !options.tryInduction)
    return sec::checkEquivalence(problem, options);  // nothing to split

  // One cooperative cancel flag per depth task plus one for induction:
  // depth t finishing non-clean cancels only STRICTLY DEEPER tasks (and
  // induction), so the merge below — which scans depths in ascending order
  // and stops at the first non-clean one — sees exactly the verdicts the
  // serial engine would have produced up to its own stopping depth.
  std::vector<std::atomic<bool>> cancels(bound + 1);
  auto cancelAbove = [&](unsigned t) {
    for (unsigned u = t + 1; u <= bound; ++u)
      cancels[u].store(true, std::memory_order_release);
  };

  std::vector<sec::SecResult> depthResults(bound);
  sec::SecResult inductionResult;
  const fault::Injector* proto = fault::currentInjector();

  ParallelExecutor::TaskGroup group;
  for (unsigned t = 0; t < bound; ++t) {
    exec.submit(group, [&, t] {
      std::optional<fault::ScopedInjector> si;
      if (proto != nullptr) si.emplace(*proto);
      sec::SecOptions o = options;
      o.boundTransactions = t + 1;
      o.bmcStartTransaction = t;
      o.tryInduction = false;
      o.bmcBudget.cancel = &cancels[t];
      o.fraigOptions.candidateBudget.cancel = &cancels[t];
      depthResults[t] = sec::checkEquivalence(problem, o);
      if (depthResults[t].verdict != sec::Verdict::kBoundedEquivalent)
        cancelAbove(t);
    });
  }
  const bool induction = options.tryInduction;
  if (induction) {
    exec.submit(group, [&] {
      std::optional<fault::ScopedInjector> si;
      if (proto != nullptr) si.emplace(*proto);
      sec::SecOptions o = options;
      o.boundTransactions = 0;  // induction only: the BMC loop never runs
      o.tryInduction = true;
      o.inductionBudget.cancel = &cancels[bound];
      o.fraigOptions.candidateBudget.cancel = &cancels[bound];
      inductionResult = sec::checkEquivalence(problem, o);
    });
  }
  exec.wait(group);

  // Merge in depth order.  Every shard re-derived slice/absint identically,
  // so preprocessing telemetry comes from one representative shard; solver
  // and graph costs sum across shards (the honest total price paid).
  sec::SecResult merged;
  const sec::SecResult& rep = bound > 0 ? depthResults[0] : inductionResult;
  merged.stats.slice = rep.stats.slice;
  merged.stats.absint = rep.stats.absint;
  auto addCosts = [&merged](const sec::SecStats& s) {
    merged.stats.aigNodes += s.aigNodes;
    merged.stats.bmcAigNodes += s.bmcAigNodes;
    merged.stats.satConflicts += s.satConflicts;
    merged.stats.satDecisions += s.satDecisions;
    merged.stats.fraigMergedNodes += s.fraigMergedNodes;
    merged.stats.fraigSatCalls += s.fraigSatCalls;
    merged.stats.fraigTimeMs += s.fraigTimeMs;
    merged.stats.rewriteSavedNodes += s.rewriteSavedNodes;
    merged.stats.rewriteApplied += s.rewriteApplied;
    merged.stats.rewriteTimeMs += s.rewriteTimeMs;
    merged.stats.satSubsumedClauses += s.satSubsumedClauses;
    merged.stats.satVivifiedClauses += s.satVivifiedClauses;
    merged.stats.satEliminatedVars += s.satEliminatedVars;
    merged.stats.satInprocessRounds += s.satInprocessRounds;
    merged.stats.seconds += s.seconds;  // summed CPU cost, not wall clock
  };
  merged.verdict = sec::Verdict::kBoundedEquivalent;
  for (unsigned t = 0; t < bound; ++t) {
    const sec::SecResult& r = depthResults[t];
    addCosts(r.stats);
    for (const sec::PhaseStats& p : r.stats.bmcTransactions)
      merged.stats.bmcTransactions.push_back(p);
    merged.stats.transactionsChecked = t + 1;
    if (r.verdict == sec::Verdict::kInconclusive) {
      // This depth's own budget expired (a cancellation can only have come
      // from a shallower non-clean depth, which we would have hit first).
      merged.verdict = sec::Verdict::kInconclusive;
      return merged;
    }
    if (r.verdict == sec::Verdict::kNotEquivalent) {
      merged.verdict = sec::Verdict::kNotEquivalent;
      merged.cex = r.cex;  // lowest failing depth == the serial engine's
      return merged;
    }
  }
  if (induction) {
    addCosts(inductionResult.stats);
    merged.stats.inductionAigNodes = inductionResult.stats.inductionAigNodes;
    merged.stats.induction = inductionResult.stats.induction;
    merged.stats.inductionAttempted = inductionResult.stats.inductionAttempted;
    merged.stats.inductionClosed = inductionResult.stats.inductionClosed;
    // Mining is gated on tryInduction, so only this task ran it: the depth
    // shards carry zero InvStats by construction.
    merged.stats.inv = inductionResult.stats.inv;
    if (inductionResult.verdict == sec::Verdict::kProvenEquivalent)
      merged.verdict = sec::Verdict::kProvenEquivalent;
  }
  return merged;
}

}  // namespace dfv::core
