#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/hash.h"
#include "drc/diagnostics.h"
#include "fault/fault.h"

namespace dfv::core {

using common::JsonValue;
using drc::jsonEscape;

namespace {

constexpr const char* kFormat = "dfv-journal";
constexpr std::uint64_t kVersion = 1;
/// Sanity bound on one record payload; no real frame comes close, and the
/// cap keeps a corrupted length field from asking the loader to swallow the
/// address space.
constexpr std::size_t kMaxPayload = std::size_t{64} << 20;

/// Doubles round-trip exactly through 17 significant digits; the resumed
/// report's `seconds` fields must be bit-identical to the recorded run's.
std::string fmtDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void writeAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    DFV_CHECK_MSG(w > 0, "journal write failed");
    off += static_cast<std::size_t>(w);
  }
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  out = os.str();
  return true;
}

const char* boolStr(bool b) { return b ? "true" : "false"; }

}  // namespace

const char* journalDamageName(JournalDamage d) {
  switch (d) {
    case JournalDamage::kNone: return "none";
    case JournalDamage::kMissing: return "missing";
    case JournalDamage::kBadHeader: return "bad-header";
    case JournalDamage::kTornTail: return "torn-tail";
    case JournalDamage::kBadRecord: return "bad-record";
  }
  DFV_UNREACHABLE("bad journal damage");
}

// ----- Journal (write side) -------------------------------------------------

Journal::Journal(std::string basePath, const std::string& planName)
    : base_(std::move(basePath)) {
  // WAL first, header second: the header commit is the "journal live"
  // barrier, so a crash between the two leaves the old header (or none)
  // and a load that cold-starts — stale-looking, never wrong.
  fd_ = ::open((base_ + ".wal").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  DFV_CHECK_MSG(fd_ >= 0, "cannot open journal WAL '" << base_ << ".wal'");
  try {
    commitHeader(planName);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::commitHeader(const std::string& planName) {
  const fault::Policy p = fault::onSiteHit(fault::Site::kJournalCommit);
  if (p == fault::Policy::kThrowCheckError)
    fault::throwInjected(fault::Site::kJournalCommit);
  std::string payload = "{\"format\":\"" + std::string(kFormat) +
                        "\",\"version\":" + std::to_string(kVersion) +
                        ",\"plan\":\"" + jsonEscape(planName) + "\"}\n";
  if (p == fault::Policy::kTornWrite) {
    // A crash mid-commit: half a header still gets renamed into place here
    // so the damage is reachable — load classifies it kBadHeader and
    // resumes nothing.  The journal itself is dead from now on.
    payload.resize(payload.size() / 2);
    failed_ = true;
  }
  const std::string tmp = base_ + ".hdr.tmp";
  const int hfd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  DFV_CHECK_MSG(hfd >= 0, "cannot open journal header tmp '" << tmp << "'");
  writeAll(hfd, payload.data(), payload.size());
  const int frc = ::fsync(hfd);
  ::close(hfd);
  DFV_CHECK_MSG(frc == 0, "journal header fsync failed");
  DFV_CHECK_MSG(std::rename(tmp.c_str(), (base_ + ".hdr").c_str()) == 0,
                "journal header rename failed");
}

void Journal::append(const JournalRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return;  // a torn journal is a crashed journal: stop writing
  const std::string payload = encodeRecord(rec);
  const std::uint32_t crc = common::crc32(payload);
  char head[48];
  std::snprintf(head, sizeof head, "%zu %08x ", payload.size(),
                static_cast<unsigned>(crc));
  std::string frame = std::string(head) + payload + "\n";
  const fault::Policy p = fault::onSiteHit(fault::Site::kJournalAppend);
  if (p == fault::Policy::kThrowCheckError)
    fault::throwInjected(fault::Site::kJournalAppend);  // nothing written
  if (p == fault::Policy::kTornWrite) {
    // Crash model: the frame stops mid-payload and the process "dies" —
    // the truncated bytes land on disk, no fsync, no further appends.
    frame.resize(frame.size() / 2);
    writeAll(fd_, frame.data(), frame.size());
    failed_ = true;
    return;
  }
  writeAll(fd_, frame.data(), frame.size());
  const fault::Policy pf = fault::onSiteHit(fault::Site::kJournalFsync);
  if (pf == fault::Policy::kThrowCheckError)
    fault::throwInjected(fault::Site::kJournalFsync);  // frame intact on disk
  DFV_CHECK_MSG(::fsync(fd_) == 0, "journal fsync failed");
  ++appended_;
}

bool Journal::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

// ----- Record codec ---------------------------------------------------------

std::string Journal::encodeRecord(const JournalRecord& rec) {
  const BlockResult& b = rec.result;
  std::ostringstream os;
  os << "{\"digest\":" << rec.digest
     << ",\"fingerprint\":" << rec.fingerprint
     << ",\"has_drc\":" << boolStr(rec.hasDrc || b.drc.has_value())
     << ",\"result\":{\"name\":\"" << jsonEscape(b.block) << "\",\"method\":\""
     << (b.method == Method::kSec ? "sec" : "cosim")
     << "\",\"passed\":" << boolStr(b.passed)
     << ",\"skipped_unchanged\":" << boolStr(b.skippedUnchanged)
     << ",\"blocked_by_drc\":" << boolStr(b.blockedByDrc)
     << ",\"inconclusive\":" << boolStr(b.inconclusive)
     << ",\"faulted\":" << boolStr(b.faulted)
     << ",\"degraded\":" << boolStr(b.degraded)
     << ",\"attempts\":" << b.attempts
     << ",\"fault_injections\":" << b.faultInjections
     << ",\"slice_states_severed\":" << b.sliceStatesSevered
     << ",\"slice_seq_constants\":" << b.sliceSeqConstants
     << ",\"inv_certified\":" << b.invCertified
     << ",\"seconds\":" << fmtDouble(b.seconds)
     << ",\"detail\":\"" << jsonEscape(b.detail) << "\""
     << ",\"portfolio_winner\":" << b.portfolioWinner
     << ",\"portfolio_winner_name\":\"" << jsonEscape(b.portfolioWinnerName)
     << "\",\"attempt_log\":[";
  for (std::size_t i = 0; i < b.attemptLog.size(); ++i) {
    const AttemptRecord& a = b.attemptLog[i];
    if (i > 0) os << ',';
    os << "{\"rung\":" << a.rung << ",\"max_conflicts\":" << a.maxConflicts
       << ",\"max_propagations\":" << a.maxPropagations << ",\"outcome\":\""
       << jsonEscape(a.outcome) << "\",\"faulted\":" << boolStr(a.faulted)
       << ",\"seconds\":" << fmtDouble(a.seconds)
       << ",\"member\":" << a.member << ",\"member_name\":\""
       << jsonEscape(a.memberName) << "\",\"winner\":" << boolStr(a.winner)
       << ",\"cancelled\":" << boolStr(a.cancelled)
       << ",\"sat_conflicts\":" << a.satConflicts
       << ",\"sat_decisions\":" << a.satDecisions
       << ",\"sat_propagations\":" << a.satPropagations
       << ",\"aig_nodes\":" << a.aigNodes
       << ",\"sat_learnts\":" << a.satLearnts
       << ",\"sat_subsumed\":" << a.satSubsumed
       << ",\"sat_vivified\":" << a.satVivified
       << ",\"sat_eliminated_vars\":" << a.satEliminatedVars
       << ",\"rewrite_saved_nodes\":" << a.rewriteSavedNodes
       << ",\"inv_candidates\":" << a.invCandidates
       << ",\"inv_certified\":" << a.invCertified << "}";
  }
  os << "]}}";
  return os.str();
}

JournalRecord Journal::decodeRecord(const JsonValue& v) {
  JournalRecord rec;
  rec.digest = v.at("digest").asUint64();
  rec.fingerprint = v.at("fingerprint").asUint64();
  rec.hasDrc = v.at("has_drc").asBool();
  const JsonValue& r = v.at("result");
  BlockResult& b = rec.result;
  b.block = r.at("name").asString();
  const std::string& method = r.at("method").asString();
  DFV_CHECK_MSG(method == "sec" || method == "cosim",
                "bad journal method '" << method << "'");
  b.method = method == "sec" ? Method::kSec : Method::kCosim;
  b.passed = r.at("passed").asBool();
  b.skippedUnchanged = r.at("skipped_unchanged").asBool();
  b.blockedByDrc = r.at("blocked_by_drc").asBool();
  b.inconclusive = r.at("inconclusive").asBool();
  b.faulted = r.at("faulted").asBool();
  b.degraded = r.at("degraded").asBool();
  b.attempts = static_cast<unsigned>(r.at("attempts").asUint64());
  b.faultInjections = r.at("fault_injections").asUint64();
  b.sliceStatesSevered = r.at("slice_states_severed").asUint64();
  b.sliceSeqConstants = r.at("slice_seq_constants").asUint64();
  b.invCertified = r.at("inv_certified").asUint64();
  b.seconds = r.at("seconds").asDouble();
  b.detail = r.at("detail").asString();
  b.portfolioWinner = static_cast<int>(r.at("portfolio_winner").asInt64());
  b.portfolioWinnerName = r.at("portfolio_winner_name").asString();
  for (const JsonValue& av : r.at("attempt_log").items()) {
    AttemptRecord a;
    a.rung = static_cast<unsigned>(av.at("rung").asUint64());
    a.maxConflicts = av.at("max_conflicts").asInt64();
    a.maxPropagations = av.at("max_propagations").asInt64();
    a.outcome = av.at("outcome").asString();
    a.faulted = av.at("faulted").asBool();
    a.seconds = av.at("seconds").asDouble();
    a.member = static_cast<int>(av.at("member").asInt64());
    a.memberName = av.at("member_name").asString();
    a.winner = av.at("winner").asBool();
    a.cancelled = av.at("cancelled").asBool();
    a.satConflicts = av.at("sat_conflicts").asUint64();
    a.satDecisions = av.at("sat_decisions").asUint64();
    a.satPropagations = av.at("sat_propagations").asUint64();
    a.aigNodes = static_cast<std::size_t>(av.at("aig_nodes").asUint64());
    a.satLearnts = av.at("sat_learnts").asUint64();
    a.satSubsumed = av.at("sat_subsumed").asUint64();
    a.satVivified = av.at("sat_vivified").asUint64();
    a.satEliminatedVars = av.at("sat_eliminated_vars").asUint64();
    a.rewriteSavedNodes = av.at("rewrite_saved_nodes").asUint64();
    a.invCandidates = av.at("inv_candidates").asUint64();
    a.invCertified = av.at("inv_certified").asUint64();
    b.attemptLog.push_back(std::move(a));
  }
  return rec;
}

// ----- Loader ---------------------------------------------------------------

namespace {

enum class FrameStatus { kOk, kTorn, kBad };

/// Parses one frame starting at `pos`.  kTorn means the data ran out while
/// everything seen so far was still a valid frame prefix (crash during
/// append); kBad means a byte that cannot belong to a valid frame, a CRC
/// mismatch, or an unparseable payload (corruption).  On kOk, `pos` is
/// advanced past the frame and `rec` is filled.
FrameStatus parseFrame(const std::string& wal, std::size_t& pos,
                       JournalRecord& rec, std::string& why) {
  std::size_t i = pos;
  // <len>
  std::size_t digits = 0;
  std::size_t len = 0;
  while (i < wal.size() && std::isdigit(static_cast<unsigned char>(wal[i]))) {
    len = len * 10 + static_cast<std::size_t>(wal[i] - '0');
    ++digits;
    if (len > kMaxPayload || digits > 9) {
      why = "frame length out of range";
      return FrameStatus::kBad;
    }
    ++i;
  }
  if (i == wal.size()) {
    why = "file ends inside frame header";
    return FrameStatus::kTorn;
  }
  if (digits == 0 || wal[i] != ' ') {
    why = "malformed frame length";
    return FrameStatus::kBad;
  }
  ++i;
  // <crc32:8 hex>
  std::uint32_t crc = 0;
  for (unsigned h = 0; h < 8; ++h) {
    if (i == wal.size()) {
      why = "file ends inside frame checksum";
      return FrameStatus::kTorn;
    }
    const char c = wal[i++];
    crc <<= 4;
    if (c >= '0' && c <= '9')
      crc |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    else {
      why = "malformed frame checksum";
      return FrameStatus::kBad;
    }
  }
  if (i == wal.size()) {
    why = "file ends inside frame header";
    return FrameStatus::kTorn;
  }
  if (wal[i] != ' ') {
    why = "malformed frame header";
    return FrameStatus::kBad;
  }
  ++i;
  // <payload>\n
  if (i + len > wal.size()) {
    why = "file ends inside frame payload";
    return FrameStatus::kTorn;
  }
  const std::string_view payload(wal.data() + i, len);
  i += len;
  if (i == wal.size()) {
    why = "file ends before frame terminator";
    return FrameStatus::kTorn;
  }
  if (wal[i] != '\n') {
    why = "missing frame terminator";
    return FrameStatus::kBad;
  }
  ++i;
  if (common::crc32(payload) != crc) {
    why = "frame checksum mismatch";
    return FrameStatus::kBad;
  }
  JsonValue v;
  std::string error;
  if (!common::tryParseJson(payload, v, error)) {
    why = "frame payload is not strict JSON: " + error;
    return FrameStatus::kBad;
  }
  try {
    rec = Journal::decodeRecord(v);
  } catch (const CheckError& ex) {
    why = std::string("frame payload is not record-shaped: ") + ex.what();
    return FrameStatus::kBad;
  }
  pos = i;
  return FrameStatus::kOk;
}

}  // namespace

JournalLoaded Journal::load(const std::string& basePath) {
  JournalLoaded out;
  std::string header;
  if (!readFile(basePath + ".hdr", header)) {
    out.damage = JournalDamage::kMissing;
    out.note = "no journal header at '" + basePath + ".hdr'";
    return out;
  }
  {
    JsonValue h;
    std::string error;
    bool ok = common::tryParseJson(header, h, error);
    if (ok) {
      try {
        ok = h.at("format").asString() == kFormat &&
             h.at("version").asUint64() == kVersion;
        if (ok) out.planName = h.at("plan").asString();
      } catch (const CheckError&) {
        ok = false;
      }
    }
    if (!ok) {
      out.damage = JournalDamage::kBadHeader;
      out.note = "journal header unreadable or wrong format/version";
      return out;
    }
  }
  std::string wal;
  if (!readFile(basePath + ".wal", wal)) return out;  // header-only: empty
  std::size_t pos = 0;
  while (pos < wal.size()) {
    JournalRecord rec;
    std::string why;
    const std::size_t frameStart = pos;
    const FrameStatus st = parseFrame(wal, pos, rec, why);
    if (st == FrameStatus::kOk) {
      out.records.push_back(std::move(rec));
      continue;
    }
    // Nothing after an unverifiable frame is trusted: a torn tail loses
    // only itself (there is nothing after EOF), a bad record mid-file
    // invalidates everything downstream of it too.
    out.damage = st == FrameStatus::kTorn ? JournalDamage::kTornTail
                                          : JournalDamage::kBadRecord;
    out.droppedBytes = wal.size() - frameStart;
    std::ostringstream os;
    os << why << " (record " << out.records.size() << ", byte " << frameStart
       << "); dropped " << out.droppedBytes << " trailing bytes";
    out.note = os.str();
    break;
  }
  return out;
}

// ----- Problem fingerprints -------------------------------------------------

namespace {

void mixBudget(common::StableHasher& h, const sat::Budget& b) {
  h.mix(b.maxConflicts);
  h.mix(b.maxPropagations);
  h.mix(b.maxSeconds);
}

void mixSecOptions(common::StableHasher& h, const sec::SecOptions& o) {
  h.mix(o.boundTransactions);
  h.mix(o.bmcStartTransaction);
  h.mix(o.tryInduction);
  h.mix(o.structuralAliasing);
  h.mix(o.fraig);
  h.mix(o.rewrite);
  h.mix(o.absint);
  h.mix(o.slice);
  h.mix(o.invariants);
  // Solver heuristics never change verdicts, but they DO shape the
  // recorded telemetry (the replay fingerprint in attempt_log), and a
  // resumed record claims to be what a live run would have reported.
  h.mix(o.solver.seed);
  h.mix(o.solver.phaseSaving);
  h.mix(static_cast<unsigned>(o.solver.restartPolicy));
  h.mix(o.solver.restartBase);
  h.mix(o.solver.geometricGrowth);
  h.mix(o.solver.inprocess);
  h.mix(o.solver.inprocessVivify);
  h.mix(o.solver.inprocessSubsume);
  h.mix(o.solver.inprocessEliminate);
  h.mix(o.solver.inprocessInterval);
  mixBudget(h, o.bmcBudget);
  mixBudget(h, o.inductionBudget);
}

}  // namespace

std::uint64_t secBlockFingerprint(const std::string& block,
                                  std::uint64_t digest,
                                  const sec::SecOptions& options,
                                  const RetryPolicy& policy, bool racing,
                                  unsigned portfolioMembers) {
  common::StableHasher h;
  h.mix(std::string_view("sec"));
  h.mix(std::string_view(block));
  h.mix(digest);
  mixSecOptions(h, options);
  h.mix(policy.maxAttempts);
  h.mix(policy.budgetScale);
  h.mix(static_cast<std::uint64_t>(policy.rungs.size()));
  for (const RetryRung& r : policy.rungs) {
    h.mix(r.budgetScale);
    h.mix(r.fraig.has_value());
    h.mix(r.fraig.value_or(false));
    h.mix(r.absint.has_value());
    h.mix(r.absint.value_or(false));
    h.mix(r.invariants.has_value());
    h.mix(r.invariants.value_or(false));
  }
  h.mix(policy.retryInductionCutoff);
  h.mix(policy.cosimSeed);
  h.mix(racing);
  h.mix(portfolioMembers);
  return h.digest();
}

std::uint64_t cosimBlockFingerprint(const std::string& block,
                                    std::uint64_t digest,
                                    std::uint64_t cosimSeed) {
  common::StableHasher h;
  h.mix(std::string_view("cosim"));
  h.mix(std::string_view(block));
  h.mix(digest);
  h.mix(cosimSeed);
  return h.digest();
}

std::uint64_t planBlockFingerprint(const std::string& block, Method method,
                                   std::uint64_t digest, DrcPolicy drcPolicy,
                                   bool hasDrcRunner) {
  common::StableHasher h;
  h.mix(std::string_view("plan"));
  h.mix(std::string_view(block));
  h.mix(static_cast<unsigned>(method));
  h.mix(digest);
  h.mix(static_cast<unsigned>(drcPolicy));
  h.mix(hasDrcRunner);
  return h.digest();
}

}  // namespace dfv::core
