// A write-ahead, checksummed journal of plan execution.
//
// A killed or crashed process forfeits every verdict it computed unless the
// verdicts were durable before the crash.  Journal makes them durable: the
// plan runners (VerificationPlan, ResilientRunner) append one record per
// completed block — the full BlockResult plus the block's content digest and
// a *problem fingerprint* — and `resumePlan` replays those records on
// restart, skipping blocks whose recorded verdict is admissible under the
// exact predicate the incremental cache already enforces
// (`isResumableVerdict`: clean, full-strength passes only; inconclusive,
// faulted, degraded and cancelled rows re-run, never trusted from disk).
//
// On-disk layout (two files derived from one base path):
//   <base>.hdr  — one JSON object {"format","version","plan"}, committed by
//                 write-tmp + fsync + atomic rename (fault site
//                 journal.commit).  The rename is the "journal live"
//                 barrier: a crash before it leaves the previous header
//                 (or none) and an empty WAL — a cold start, never a lie.
//   <base>.wal  — append-only frames, one per record:
//                     <len> <crc32:8 hex> <payload>\n
//                 where len is the payload's byte length and the CRC is
//                 over the payload bytes only.  Appends write the whole
//                 frame then fsync (fault sites journal.append,
//                 journal.fsync); a frame is valid only when complete and
//                 checksum-clean.
//
// Corruption is a first-class input, not an error path.  `load` classifies:
//   * torn tail — the file ends mid-frame (crash during append): the tail
//     is dropped, every earlier record stands;
//   * bad record — a complete frame fails its CRC, is not strict JSON, or
//     is not record-shaped: that record AND every frame after it are
//     dropped (nothing after unverifiable bytes is trusted);
//   * bad/missing header — the journal as a whole is disregarded.
// In every mode the failure direction is the safe one: blocks re-run.  A
// wrong or stale verdict can never surface, because admission additionally
// requires the record's digest AND fingerprint to match the live plan — a
// record from an edited design or a reconfigured runner cold-starts from
// that point (see resumePlan in plan.h/resilient.h).
//
// Appends are mutex-serialized: ParallelExecutor workers complete blocks
// concurrently and append from their own threads (raced under TSan via the
// `journal` ctest label).  Record identity is the block name, so WAL order
// is completion order and resume is order-independent per block.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/resilient.h"

namespace dfv::core {

/// One journaled block completion.
struct JournalRecord {
  std::uint64_t digest = 0;       ///< the block's content digest at run time
  std::uint64_t fingerprint = 0;  ///< problem fingerprint (see below)
  /// A block that ran DRC carries diagnostics the journal does not
  /// serialize; such records are never resumable (DRC is re-evaluated live,
  /// not replayed from disk).
  bool hasDrc = false;
  BlockResult result;  ///< result.block names the block
};

/// What `Journal::load` found on disk.
enum class JournalDamage {
  kNone,       ///< header and every frame verified
  kMissing,    ///< no header file: no journal to resume from
  kBadHeader,  ///< header unreadable/malformed: journal disregarded
  kTornTail,   ///< WAL ends mid-frame; the torn tail was dropped
  kBadRecord,  ///< a complete frame failed CRC/JSON; it and all after dropped
};

const char* journalDamageName(JournalDamage d);

struct JournalLoaded {
  std::string planName;  ///< from the header (empty when damaged/missing)
  std::vector<JournalRecord> records;  ///< verified records, in WAL order
  JournalDamage damage = JournalDamage::kNone;
  std::size_t droppedBytes = 0;  ///< WAL bytes after the last good frame
  std::string note;              ///< human-readable damage description
};

/// The write side.  Constructing commits a fresh journal (truncates the WAL,
/// then atomically commits the header); `append` adds one fsync'd frame.
class Journal {
 public:
  /// Throws CheckError on I/O failure (including an injected
  /// journal.commit fault) — callers that must survive journal loss catch
  /// and run unjournaled.
  Journal(std::string basePath, const std::string& planName);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record.  Thread-safe.  Throws CheckError on write/fsync
  /// failure (the frame is then absent or torn, never half-trusted).  After
  /// a torn write the journal is failed() and every later append is a
  /// silent no-op — the model is a crash, and a WAL with a torn frame
  /// mid-file must not grow past it.
  void append(const JournalRecord& rec);

  bool failed() const;
  std::uint64_t appended() const;  ///< clean frames appended so far
  const std::string& basePath() const { return base_; }

  /// Reads and verifies the journal at `basePath`.  Never throws for
  /// on-disk damage — damage is classified in the result.
  static JournalLoaded load(const std::string& basePath);

  /// Record payload codec, exposed for the corruption fuzz tests.
  /// decodeRecord throws CheckError on any shape violation.
  static std::string encodeRecord(const JournalRecord& rec);
  static JournalRecord decodeRecord(const common::JsonValue& v);

 private:
  void commitHeader(const std::string& planName);

  std::string base_;
  int fd_ = -1;  ///< the WAL, open for append
  bool failed_ = false;
  std::uint64_t appended_ = 0;
  mutable std::mutex mu_;
};

// ----- Problem fingerprints -------------------------------------------------
//
// A fingerprint is a stable (process- and machine-independent) hash of
// everything that shapes a block's recorded run: design identity (block
// name + content digest) and the verification configuration.  Tuning
// sub-option structs (fraigOptions, rewriteOptions, absintOptions,
// sliceOptions, invOptions) are deliberately excluded: the repo's parity
// invariants assert they never change verdicts, only the path taken — and
// the toggles, budgets and solver heuristics that DO shape the recorded
// telemetry are all hashed.  A resumed record whose fingerprint matches
// therefore reproduces what a live run of the same entry would report.

/// Fingerprint of a ResilientRunner SEC block: name, digest, the
/// verdict/telemetry-shaping SecOptions fields, the retry policy, and the
/// portfolio-racing configuration in force.
std::uint64_t secBlockFingerprint(const std::string& block,
                                  std::uint64_t digest,
                                  const sec::SecOptions& options,
                                  const RetryPolicy& policy,
                                  bool racing = false,
                                  unsigned portfolioMembers = 0);

/// Fingerprint of a ResilientRunner cosim block (stimulus seed included —
/// a reseeded fallback is a different experiment).
std::uint64_t cosimBlockFingerprint(const std::string& block,
                                    std::uint64_t digest,
                                    std::uint64_t cosimSeed);

/// Fingerprint of a VerificationPlan block, whose runners are opaque
/// callbacks: design identity plus the plan-level DRC gate.  The digest
/// contract ("must change whenever either model of the pair does") is what
/// ties the callback's behavior into the hash.
std::uint64_t planBlockFingerprint(const std::string& block, Method method,
                                   std::uint64_t digest, DrcPolicy drcPolicy,
                                   bool hasDrcRunner);

}  // namespace dfv::core
