// Machine-readable reports for verification plans.
//
// CI systems track SLM/RTL consistency over time; PlanReport serializes to
// a small JSON document (no external dependencies — the schema is flat and
// the values are controlled).
#pragma once

#include <string>

#include "core/plan.h"

namespace dfv::core {

/// Serializes a PlanReport as a JSON object:
/// {"plan": ..., "summary": {...}, "blocks": [{...}, ...]}.
std::string toJson(const std::string& planName, const PlanReport& report);

}  // namespace dfv::core
