#include "core/resilient.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <sstream>

#include "core/journal.h"
#include "fault/fault.h"
#include "ir/eval.h"
#include "ir/transition_system.h"
#include "workload/workload.h"

namespace dfv::core {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Scales each finite cap; an unlimited (zero) cap stays unlimited, and a
/// finite cap always strictly grows so the ladder makes progress even for
/// tiny bases.
sat::Budget scaledBudget(const sat::Budget& base, double scale) {
  base.validate();  // a negative base cap must fail loudly, not scale
  sat::Budget b = base;
  auto grow = [scale](std::int64_t cap) -> std::int64_t {
    if (cap == 0) return 0;
    const double scaled = static_cast<double>(cap) * scale;
    return std::max(cap + 1, static_cast<std::int64_t>(scaled));
  };
  b.maxConflicts = grow(base.maxConflicts);
  b.maxPropagations = grow(base.maxPropagations);
  if (base.maxSeconds > 0.0) b.maxSeconds = base.maxSeconds * scale;
  return b;
}

/// The cap worth reporting for an attempt: the larger *finite* one of the
/// two phase budgets (zero means both phases are unlimited).
std::int64_t bindingCap(std::int64_t bmc, std::int64_t induction) {
  if (bmc == 0) return induction;
  if (induction == 0) return bmc;
  return std::max(bmc, induction);
}

/// Options for the attempt-th try (0 = base).  Rung toggles accumulate:
/// each climbed rung may override fraig/absint, last write wins.
sec::SecOptions attemptOptions(const sec::SecOptions& base, unsigned attempt,
                               const RetryPolicy& policy) {
  sec::SecOptions opts = base;
  if (attempt == 0) return opts;
  double cumulative = 1.0;
  for (unsigned i = 1; i <= attempt; ++i) {
    RetryRung rung;
    if (policy.rungs.empty()) {
      rung.budgetScale = policy.budgetScale;
    } else {
      const std::size_t idx =
          std::min<std::size_t>(i - 1, policy.rungs.size() - 1);
      rung = policy.rungs[idx];
    }
    cumulative *= rung.budgetScale;
    if (rung.fraig.has_value()) opts.fraig = *rung.fraig;
    if (rung.absint.has_value()) opts.absint = *rung.absint;
    if (rung.invariants.has_value()) opts.invariants = *rung.invariants;
  }
  opts.bmcBudget = scaledBudget(base.bmcBudget, cumulative);
  opts.inductionBudget = scaledBudget(base.inductionBudget, cumulative);
  return opts;
}

/// Copies the replay-fingerprint telemetry of one attempt's SecStats into
/// its AttemptRecord.  Each attempt runs a fresh engine, so these are the
/// attempt's own costs — disjoint across rungs, never cumulative.
void recordSecTelemetry(AttemptRecord& rec, const sec::SecStats& s) {
  rec.satConflicts = s.satConflicts;
  rec.satDecisions = s.satDecisions;
  std::uint64_t props = s.induction.propagations;
  std::uint64_t learnts = s.induction.learntClauses;
  for (const sec::PhaseStats& p : s.bmcTransactions) {
    props += p.propagations;
    learnts += p.learntClauses;
  }
  rec.satPropagations = props;
  rec.satLearnts = learnts;
  rec.satSubsumed = s.satSubsumedClauses;
  rec.satVivified = s.satVivifiedClauses;
  rec.satEliminatedVars = s.satEliminatedVars;
  rec.rewriteSavedNodes = s.rewriteSavedNodes;
  rec.aigNodes = s.aigNodes;
  rec.invCandidates = s.inv.candidates;
  rec.invCertified = s.inv.certified;
}

void tally(PlanReport& report, const BlockResult& r) {
  report.totalSeconds += r.seconds;
  if (r.inconclusive)
    ++report.inconclusive;
  else
    ++(r.passed ? report.verified : report.failed);
  if (r.blockedByDrc) ++report.blocked;
  if (r.faulted) ++report.faulted;
  if (r.degraded) ++report.degraded;
  if (r.resumed) ++report.resumed;
}

}  // namespace

void ResilientRunner::addSecBlock(const std::string& block,
                                  std::uint64_t digest,
                                  sec::SecOptions baseOptions,
                                  SecRunner runner) {
  DFV_CHECK_MSG(runner != nullptr, "null runner");
  for (const auto& e : blocks_)
    DFV_CHECK_MSG(e.block != block, "duplicate block '" << block << "'");
  Entry e;
  e.block = block;
  e.method = Method::kSec;
  e.digest = digest;
  e.baseOptions = std::move(baseOptions);
  e.secRunner = std::move(runner);
  blocks_.push_back(std::move(e));
}

void ResilientRunner::addCosimBlock(const std::string& block,
                                    std::uint64_t digest, CosimRunner runner) {
  DFV_CHECK_MSG(runner != nullptr, "null runner");
  for (const auto& e : blocks_)
    DFV_CHECK_MSG(e.block != block, "duplicate block '" << block << "'");
  Entry e;
  e.block = block;
  e.method = Method::kCosim;
  e.digest = digest;
  e.cosimRunner = std::move(runner);
  blocks_.push_back(std::move(e));
}

ResilientRunner::Entry& ResilientRunner::find(const std::string& block) {
  auto it = std::find_if(blocks_.begin(), blocks_.end(),
                         [&](const Entry& e) { return e.block == block; });
  DFV_CHECK_MSG(it != blocks_.end(), "no block named '" << block << "'");
  return *it;
}

void ResilientRunner::setCosimFallback(const std::string& block,
                                       CosimRunner fallback) {
  DFV_CHECK_MSG(fallback != nullptr, "null fallback");
  Entry& e = find(block);
  DFV_CHECK_MSG(e.method == Method::kSec,
                "cosim fallback only applies to SEC blocks");
  e.cosimRunner = std::move(fallback);
}

void ResilientRunner::touch(const std::string& block,
                            std::uint64_t newDigest) {
  find(block).digest = newDigest;
}

BlockResult ResilientRunner::runEntry(Entry& e) {
  BlockResult r;
  r.block = e.block;
  r.method = e.method;
  r.attempts = 0;
  const auto start = std::chrono::steady_clock::now();
  const fault::Injector* inj = fault::currentInjector();
  const std::uint64_t injectionsBefore =
      inj != nullptr ? inj->totalInjections() : 0;
  // Firings inside portfolio member tasks land on the members' own injector
  // clones, invisible to this thread's counter; the winner's are added back
  // so the block's reported count covers the run that produced its verdict.
  std::uint64_t portfolioInjections = 0;

  if (e.method == Method::kCosim) {
    AttemptRecord rec;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      const CosimOutcome out = e.cosimRunner(policy_.cosimSeed);
      r.passed = out.passed;
      r.detail = out.detail;
      rec.outcome = out.passed ? "cosim-pass" : "cosim-fail";
    } catch (const std::exception& ex) {
      r.faulted = true;
      r.detail = std::string("faulted: ") + ex.what();
      rec.outcome = r.detail;
      rec.faulted = true;
    }
    rec.seconds = secondsSince(t0);
    r.attemptLog.push_back(std::move(rec));
    r.attempts = 1;
  } else {
    const bool racing =
        exec_ != nullptr && portfolioEnabled_ && portfolio_.members > 1;
    const unsigned maxAttempts = std::max(1u, policy_.maxAttempts);
    for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
      const sec::SecOptions opts =
          attemptOptions(e.baseOptions, attempt, policy_);
      bool faultedNow = false;
      bool inductionCutOff = false;
      // Applies one attempt's result to the block — shared by the serial
      // path and the portfolio winner so both report identically.
      auto applyResult = [&](const sec::SecResult& sr) {
        r.inconclusive = sr.verdict == sec::Verdict::kInconclusive;
        r.passed = sr.verdict == sec::Verdict::kProvenEquivalent ||
                   sr.verdict == sec::Verdict::kBoundedEquivalent;
        r.detail = sec::verdictName(sr.verdict);
        if (sr.cex.has_value()) r.detail += ": " + sr.cex->summary();
        inductionCutOff = sr.verdict == sec::Verdict::kBoundedEquivalent &&
                          sr.stats.induction.budgetExhausted;
        r.sliceStatesSevered = sr.stats.slice.slm.statesSevered +
                               sr.stats.slice.rtl.statesSevered;
        r.sliceSeqConstants = sr.stats.slice.slm.seqConstants +
                              sr.stats.slice.rtl.seqConstants;
        r.invCertified = sr.stats.inv.certified;
      };
      if (!racing) {
        AttemptRecord rec;
        rec.rung = attempt;
        rec.maxConflicts =
            bindingCap(opts.bmcBudget.maxConflicts,
                       opts.inductionBudget.maxConflicts);
        rec.maxPropagations =
            bindingCap(opts.bmcBudget.maxPropagations,
                       opts.inductionBudget.maxPropagations);
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const sec::SecResult sr = e.secRunner(opts);
          applyResult(sr);
          rec.outcome = sec::verdictName(sr.verdict);
          recordSecTelemetry(rec, sr.stats);
        } catch (const std::exception& ex) {
          faultedNow = true;
          r.passed = false;
          r.inconclusive = false;
          r.detail = std::string("faulted: ") + ex.what();
          rec.outcome = r.detail;
          rec.faulted = true;
        }
        rec.seconds = secondsSince(t0);
        r.attemptLog.push_back(std::move(rec));
      } else {
        const std::vector<PortfolioMember> members =
            buildPortfolio(opts, portfolio_);
        const PortfolioOutcome out =
            racePortfolio(*exec_, members, e.secRunner);
        for (std::size_t j = 0; j < out.attempts.size(); ++j) {
          const MemberAttempt& a = out.attempts[j];
          AttemptRecord rec;
          rec.rung = attempt;
          const sec::SecOptions& mo = members[j].options;
          rec.maxConflicts = bindingCap(mo.bmcBudget.maxConflicts,
                                        mo.inductionBudget.maxConflicts);
          rec.maxPropagations =
              bindingCap(mo.bmcBudget.maxPropagations,
                         mo.inductionBudget.maxPropagations);
          rec.member = static_cast<int>(j);
          rec.memberName = a.name;
          rec.winner = out.winner == static_cast<int>(j);
          rec.cancelled = a.cancelled;
          rec.seconds = a.seconds;
          if (a.faulted) {
            rec.outcome = "faulted: " + a.error;
            rec.faulted = true;
          } else {
            rec.outcome = sec::verdictName(a.result.verdict);
            // Loser telemetry describes a cancelled run and varies with
            // scheduling; only the winner's row is a replay fingerprint.
            recordSecTelemetry(rec, a.result.stats);
          }
          r.attemptLog.push_back(std::move(rec));
        }
        if (out.winner >= 0) {
          const MemberAttempt& w =
              out.attempts[static_cast<std::size_t>(out.winner)];
          applyResult(w.result);
          r.portfolioWinner = out.winner;
          r.portfolioWinnerName = w.name;
          portfolioInjections += w.faultInjections;
        } else if (out.attempts[0].faulted) {
          // No member was decisive and the base member crashed: report the
          // base member's fault (a deterministic choice — every member saw
          // the same injection schedule, so "member 0 faulted" is stable).
          faultedNow = true;
          r.passed = false;
          r.inconclusive = false;
          r.detail = "faulted: " + out.attempts[0].error;
          portfolioInjections += out.attempts[0].faultInjections;
        } else {
          applyResult(out.attempts[0].result);
          portfolioInjections += out.attempts[0].faultInjections;
        }
      }
      r.attempts = attempt + 1;
      // Exceptions abort the ladder — a crash will not get better with a
      // bigger budget.  kInconclusive always earns another rung; a bounded
      // verdict whose induction was cut off optionally climbs too, chasing
      // the upgrade to proven (it is a sound pass even if it never comes).
      if (faultedNow) {
        r.faulted = true;
        break;
      }
      if (r.inconclusive) continue;
      if (inductionCutOff && policy_.retryInductionCutoff) continue;
      break;
    }
    if (r.inconclusive && e.cosimRunner != nullptr) {
      AttemptRecord rec;
      rec.rung = r.attempts;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const CosimOutcome out = e.cosimRunner(policy_.cosimSeed);
        r.degraded = true;
        r.inconclusive = false;
        r.passed = out.passed;
        r.detail = "degraded to cosim: " + out.detail;
        rec.outcome = out.passed ? "cosim-pass" : "cosim-fail";
      } catch (const std::exception& ex) {
        r.faulted = true;
        r.inconclusive = false;
        r.passed = false;
        r.detail = std::string("faulted: ") + ex.what();
        rec.outcome = r.detail;
        rec.faulted = true;
      }
      rec.seconds = secondsSince(t0);
      r.attemptLog.push_back(std::move(rec));
      ++r.attempts;
    }
  }

  r.seconds = secondsSince(start);
  r.faultInjections =
      (inj != nullptr ? inj->totalInjections() : 0) - injectionsBefore +
      portfolioInjections;
  // Only a clean, full-strength pass is cacheable.  A degraded pass is
  // weaker evidence and a faulted run is no evidence: both must rerun on
  // the next incremental pass even with an unchanged digest.  The same
  // predicate admits journal records on resume — one function, so the two
  // policies cannot drift apart.
  if (isResumableVerdict(r)) {
    e.lastCleanDigest = e.digest;
    e.lastDetail = r.detail;
  } else {
    e.lastCleanDigest.reset();
  }
  if (journal_ != nullptr) {
    // The record carries the pre-append injection count; firings at the
    // journal sites themselves are folded into the in-memory result below
    // so the report's attribution still covers every firing.
    journalAppend(e, r);
    r.faultInjections =
        (inj != nullptr ? inj->totalInjections() : 0) - injectionsBefore +
        portfolioInjections;
  }
  return r;
}

std::uint64_t ResilientRunner::entryFingerprint(const Entry& e) const {
  if (e.method == Method::kCosim)
    return cosimBlockFingerprint(e.block, e.digest, policy_.cosimSeed);
  const bool racing =
      exec_ != nullptr && portfolioEnabled_ && portfolio_.members > 1;
  return secBlockFingerprint(e.block, e.digest, e.baseOptions, policy_,
                             racing, racing ? portfolio_.members : 0);
}

void ResilientRunner::journalAppend(const Entry& e, const BlockResult& r) {
  if (journal_ == nullptr) return;
  JournalRecord rec;
  rec.digest = e.digest;
  rec.fingerprint = entryFingerprint(e);
  rec.result = r;
  try {
    journal_->append(rec);
  } catch (const std::exception&) {
    // Journal I/O failure loses durability, never a verdict: the run
    // continues unjournaled.
  }
}

unsigned ResilientRunner::resumePlan(const JournalLoaded& loaded) {
  if (loaded.planName != name_) return 0;
  unsigned admitted = 0;
  for (const JournalRecord& rec : loaded.records) {
    auto it = std::find_if(
        blocks_.begin(), blocks_.end(),
        [&](const Entry& e) { return e.block == rec.result.block; });
    // Unknown block or digest/fingerprint mismatch: the journal describes
    // a different plan from this record on — cold-start from here.
    if (it == blocks_.end()) break;
    if (rec.digest != it->digest || rec.fingerprint != entryFingerprint(*it))
      break;
    // Non-resumable rows (inconclusive, faulted, degraded, DRC-carrying)
    // re-run their own block only; later records stay admissible.
    if (!isResumableVerdict(rec.result) || rec.hasDrc ||
        rec.result.drc.has_value())
      continue;
    it->resumedResult = rec.result;
    it->resumedResult->resumed = true;
    ++admitted;
  }
  return admitted;
}

PlanReport ResilientRunner::runAll() { return run(/*incremental=*/false); }

PlanReport ResilientRunner::runIncremental() {
  return run(/*incremental=*/true);
}

PlanReport ResilientRunner::run(bool incremental) {
  PlanReport report;
  report.workers = exec_ != nullptr ? std::max(1u, exec_->workers()) : 1;
  // Skip decisions read only each entry's own cached digest, and a run
  // mutates only its own entry's cache, so deciding every skip up front is
  // equivalent to the interleaved serial order — and it keeps the parallel
  // path from racing on the cache.
  std::vector<BlockResult> results(blocks_.size());
  std::vector<char> skip(blocks_.size(), 0);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    Entry& e = blocks_[i];
    if (e.resumedResult.has_value()) {
      // Journal-admitted: emit the recorded result (resumed=true set at
      // admission), seed the incremental cache exactly as the recorded
      // clean run did, and re-journal it so the fresh WAL covers this run.
      skip[i] = 2;
      results[i] = std::move(*e.resumedResult);
      e.resumedResult.reset();
      e.lastCleanDigest = e.digest;
      e.lastDetail = results[i].detail;
      journalAppend(e, results[i]);
      continue;
    }
    if (incremental && e.lastCleanDigest.has_value() &&
        *e.lastCleanDigest == e.digest) {
      skip[i] = 1;
      BlockResult r;
      r.block = e.block;
      r.method = e.method;
      r.passed = true;
      r.skippedUnchanged = true;
      r.attempts = 0;
      r.detail = "unchanged (" + e.lastDetail + ")";
      results[i] = std::move(r);
    }
  }
  if (exec_ == nullptr) {
    for (std::size_t i = 0; i < blocks_.size(); ++i)
      if (skip[i] == 0) results[i] = runEntry(blocks_[i]);
  } else {
    // Each block task clones the calling thread's injector, so a block's
    // (seed, site, hit) stream is its own no matter which worker runs it —
    // two parallel runs inject identically, though differently from a
    // serial run's single shared stream (see fault/fault.h).
    const fault::Injector* proto = fault::currentInjector();
    ParallelExecutor::TaskGroup group;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (skip[i] != 0) continue;
      exec_->submit(group, [this, i, proto, &results] {
        std::optional<fault::ScopedInjector> si;
        if (proto != nullptr) si.emplace(*proto);
        results[i] = runEntry(blocks_[i]);
      });
    }
    exec_->wait(group);
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (skip[i] == 1)
      ++report.skipped;
    else
      tally(report, results[i]);  // computed (0) and resumed (2) both tally
    report.blocks.push_back(std::move(results[i]));
  }
  return report;
}

// ----- makeRandomCosimFallback ----------------------------------------------

namespace {

bv::BitVector randomBits(workload::Rng& rng, unsigned width) {
  bv::BitVector v(width);
  std::uint64_t word = 0;
  for (unsigned i = 0; i < width; ++i) {
    if (i % 64 == 0) word = rng.next();
    v.setBit(i, ((word >> (i % 64)) & 1) != 0);
  }
  return v;
}

ir::Value randomValue(workload::Rng& rng, const ir::Type& t) {
  if (!t.isArray()) return ir::Value(randomBits(rng, t.width));
  std::vector<bv::BitVector> elems;
  elems.reserve(t.depth);
  for (unsigned i = 0; i < t.depth; ++i)
    elems.push_back(randomBits(rng, t.width));
  return ir::Value::makeArray(std::move(elems));
}

std::size_t outputIndex(const ir::TransitionSystem& ts,
                        const std::string& name) {
  const auto& outs = ts.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i)
    if (outs[i].name == name) return i;
  DFV_CHECK_MSG(false, "no output '" << name << "'");
  return 0;
}

std::string valueToString(const ir::Value& v) {
  return v.isArray ? std::string("<array>") : v.scalar.toString(16);
}

}  // namespace

ResilientRunner::CosimRunner makeRandomCosimFallback(
    const sec::SecProblem& problem, unsigned transactions) {
  DFV_CHECK_MSG(transactions >= 1, "need at least one transaction");
  DFV_CHECK_MSG(!problem.checks().empty(), "problem has no output checks");
  return [&problem,
          transactions](std::uint64_t seed) -> ResilientRunner::CosimOutcome {
    workload::Rng rng(seed);
    const ir::TransitionSystem& slm = problem.side(sec::Side::kSlm);
    const ir::TransitionSystem& rtl = problem.side(sec::Side::kRtl);
    // Resolve the check sample points once (names were validated when the
    // checks were added).
    struct ResolvedCheck {
      const sec::OutputCheck* check;
      std::size_t slmIdx;
      std::size_t rtlIdx;
    };
    std::vector<ResolvedCheck> checks;
    checks.reserve(problem.checks().size());
    for (const sec::OutputCheck& c : problem.checks())
      checks.push_back(ResolvedCheck{&c, outputIndex(slm, c.slmOutput),
                                     outputIndex(rtl, c.rtlOutput)});
    ir::TsSimulator slmSim(slm);
    ir::TsSimulator rtlSim(rtl);
    slmSim.reset();
    rtlSim.reset();
    for (unsigned txn = 0; txn < transactions; ++txn) {
      // Sample transaction variables until every input constraint holds —
      // the SLM/RTL may legitimately differ outside the constrained space.
      ir::Env env;
      bool admissible = false;
      constexpr unsigned kMaxTries = 1000;
      for (unsigned tries = 0; tries < kMaxTries && !admissible; ++tries) {
        env.clear();
        for (ir::NodeRef v : problem.txnVars())
          env[v] = randomValue(rng, v->type());
        admissible = true;
        for (ir::NodeRef c : problem.constraints())
          if (!ir::Evaluator::evaluate(c, env).scalar.bit(0)) {
            admissible = false;
            break;
          }
      }
      if (!admissible) {
        std::ostringstream os;
        os << "cosim fallback: no admissible stimulus after " << kMaxTries
           << " samples at transaction " << txn << " (seed " << seed << ")";
        return {false, os.str()};
      }
      // Drive one transaction on each side: bound inputs evaluate their
      // binding under the sampled transaction variables, unbound input
      // cycles get fresh random values (SEC leaves them universally
      // quantified; random is the simulation analogue).
      auto runSide = [&](sec::Side side, const ir::TransitionSystem& ts,
                         ir::TsSimulator& sim) {
        std::vector<ir::TsSimulator::StepResult> steps;
        const unsigned cycles = problem.cycles(side);
        steps.reserve(cycles);
        for (unsigned cyc = 0; cyc < cycles; ++cyc) {
          std::vector<ir::Value> ins;
          ins.reserve(ts.inputs().size());
          for (ir::NodeRef in : ts.inputs()) {
            const sec::InputBinding* bound = nullptr;
            for (const sec::InputBinding& b : problem.bindings())
              if (b.side == side && b.input == in && b.cycle == cyc) {
                bound = &b;
                break;
              }
            ins.push_back(bound != nullptr
                              ? ir::Evaluator::evaluate(bound->value, env)
                              : randomValue(rng, in->type()));
          }
          steps.push_back(sim.step(ins));
        }
        return steps;
      };
      const auto slmSteps = runSide(sec::Side::kSlm, slm, slmSim);
      const auto rtlSteps = runSide(sec::Side::kRtl, rtl, rtlSim);
      for (const ResolvedCheck& rc : checks) {
        const auto& ss = slmSteps[rc.check->slmCycle];
        const auto& rs = rtlSteps[rc.check->rtlCycle];
        const bool slmValid = ss.outputValid[rc.slmIdx];
        const bool rtlValid = rs.outputValid[rc.rtlIdx];
        if (slmValid != rtlValid) {
          std::ostringstream os;
          os << "cosim fallback: valid mismatch at transaction " << txn
             << " (" << rc.check->slmOutput << " valid=" << slmValid << ", "
             << rc.check->rtlOutput << " valid=" << rtlValid << ", seed "
             << seed << ")";
          return {false, os.str()};
        }
        if (!slmValid) continue;  // both sides agree: no data this cycle
        const ir::Value& sv = ss.outputs[rc.slmIdx];
        const ir::Value& rv = rs.outputs[rc.rtlIdx];
        if (!(sv == rv)) {
          std::ostringstream os;
          os << "cosim fallback: mismatch at transaction " << txn << ": "
             << rc.check->slmOutput << "=" << valueToString(sv) << " vs "
             << rc.check->rtlOutput << "=" << valueToString(rv) << " (seed "
             << seed << ")";
          return {false, os.str()};
        }
      }
    }
    std::ostringstream os;
    os << transactions << " random transactions matched (seed " << seed
       << ")";
    return {true, os.str()};
  };
}

}  // namespace dfv::core
