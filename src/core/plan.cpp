#include "core/plan.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>

#include "core/journal.h"

namespace dfv::core {

bool isResumableVerdict(const BlockResult& r) {
  // The extra conjuncts beyond "passed and clean" are belt-and-braces for
  // journal records, which are untrusted bytes: a crafted record could set
  // passed alongside a contradictory flag, and it must still be rejected.
  return r.passed && !r.degraded && !r.faulted && !r.inconclusive &&
         !r.blockedByDrc && !r.skippedUnchanged;
}

std::vector<std::string> PlanReport::failingBlocks() const {
  std::vector<std::string> out;
  for (const auto& b : blocks)
    if (!b.passed && !b.inconclusive && !b.skippedUnchanged)
      out.push_back(b.block);
  return out;
}

std::string PlanReport::summary() const {
  std::ostringstream os;
  os << verified << " verified, " << skipped << " skipped, " << failed
     << " failed";
  if (inconclusive > 0) os << ", " << inconclusive << " inconclusive";
  os << " in " << totalSeconds << "s";
  if (blocked > 0) os << " (" << blocked << " blocked by DRC)";
  if (faulted > 0) os << " (" << faulted << " faulted)";
  if (degraded > 0) os << " (" << degraded << " degraded to cosim)";
  return os.str();
}

void VerificationPlan::addSecBlock(const std::string& block,
                                   std::uint64_t digest,
                                   std::function<sec::SecResult()> runner) {
  DFV_CHECK_MSG(runner != nullptr, "null runner");
  for (const auto& e : blocks_)
    DFV_CHECK_MSG(e.block != block, "duplicate block '" << block << "'");
  Entry e;
  e.block = block;
  e.method = Method::kSec;
  e.digest = digest;
  e.secRunner = std::move(runner);
  blocks_.push_back(std::move(e));
}

void VerificationPlan::addCosimBlock(const std::string& block,
                                     std::uint64_t digest,
                                     std::function<CosimOutcome()> runner) {
  DFV_CHECK_MSG(runner != nullptr, "null runner");
  for (const auto& e : blocks_)
    DFV_CHECK_MSG(e.block != block, "duplicate block '" << block << "'");
  Entry e;
  e.block = block;
  e.method = Method::kCosim;
  e.digest = digest;
  e.cosimRunner = std::move(runner);
  blocks_.push_back(std::move(e));
}

VerificationPlan::Entry& VerificationPlan::find(const std::string& block) {
  auto it = std::find_if(blocks_.begin(), blocks_.end(),
                         [&](const Entry& e) { return e.block == block; });
  DFV_CHECK_MSG(it != blocks_.end(), "no block named '" << block << "'");
  return *it;
}

void VerificationPlan::touch(const std::string& block,
                             std::uint64_t newDigest) {
  find(block).digest = newDigest;
}

void VerificationPlan::setBlockDrc(const std::string& block,
                                   std::function<drc::DrcReport()> runner) {
  DFV_CHECK_MSG(runner != nullptr, "null DRC runner");
  find(block).drcRunner = std::move(runner);
}

BlockResult VerificationPlan::runEntry(Entry& e) {
  BlockResult r;
  r.block = e.block;
  r.method = e.method;
  const auto start = std::chrono::steady_clock::now();
  if (e.drcRunner && drcPolicy_ != DrcPolicy::kOff) {
    r.drc = e.drcRunner();
    const bool blocked =
        (drcPolicy_ == DrcPolicy::kBlock && r.drc->errors() > 0) ||
        (drcPolicy_ == DrcPolicy::kStrict && !r.drc->clean());
    if (blocked) {
      // The pair is not verifiable as written; running the prover would
      // waste time or, worse, pass vacuously.  Fail the block up front.
      r.passed = false;
      r.blockedByDrc = true;
      r.detail = "blocked by DRC: " + r.drc->summary();
      r.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      e.lastCleanDigest.reset();
      return r;
    }
  }
  try {
    if (e.method == Method::kSec) {
      const sec::SecResult sr = e.secRunner();
      r.inconclusive = sr.verdict == sec::Verdict::kInconclusive;
      r.passed = sr.verdict == sec::Verdict::kProvenEquivalent ||
                 sr.verdict == sec::Verdict::kBoundedEquivalent;
      r.detail = sec::verdictName(sr.verdict);
      if (sr.cex.has_value()) r.detail += ": " + sr.cex->summary();
      r.sliceStatesSevered = sr.stats.slice.slm.statesSevered +
                             sr.stats.slice.rtl.statesSevered;
      r.sliceSeqConstants = sr.stats.slice.slm.seqConstants +
                            sr.stats.slice.rtl.seqConstants;
    } else {
      const CosimOutcome out = e.cosimRunner();
      r.passed = out.passed;
      r.detail = out.detail;
    }
  } catch (const std::exception& ex) {
    // A runner crash must not take the plan down with it: §4.1's point is
    // that the *plan* localizes problems, so a throwing block becomes a
    // structured failure and every other block still runs.
    r.passed = false;
    r.inconclusive = false;
    r.faulted = true;
    r.detail = std::string("faulted: ") + ex.what();
  }
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  // Only a clean, full-strength pass may seed the incremental cache: a
  // faulted or degraded block must rerun even if its digest is unchanged.
  // The same predicate admits journal records on resume — one function, so
  // the two policies cannot drift apart.
  if (isResumableVerdict(r)) {
    e.lastCleanDigest = e.digest;
    e.lastDetail = r.detail;
    e.lastSeconds = r.seconds;
  } else {
    e.lastCleanDigest.reset();
  }
  journalAppend(e, r);
  return r;
}

void VerificationPlan::journalAppend(const Entry& e, const BlockResult& r) {
  if (journal_ == nullptr) return;
  JournalRecord rec;
  rec.digest = e.digest;
  rec.fingerprint = planBlockFingerprint(e.block, e.method, e.digest,
                                         drcPolicy_, e.drcRunner != nullptr);
  rec.hasDrc = r.drc.has_value();
  rec.result = r;
  try {
    journal_->append(rec);
  } catch (const std::exception&) {
    // Journal I/O failure loses durability, never a verdict: the run
    // continues unjournaled.
  }
}

unsigned VerificationPlan::resumePlan(const JournalLoaded& loaded) {
  if (loaded.planName != name_) return 0;
  unsigned admitted = 0;
  for (const JournalRecord& rec : loaded.records) {
    auto it = std::find_if(
        blocks_.begin(), blocks_.end(),
        [&](const Entry& e) { return e.block == rec.result.block; });
    // An unknown block or a digest/fingerprint mismatch means the plan the
    // journal describes is not the plan we have: cold-start from here —
    // this record and everything after it are stale, never a guess.
    if (it == blocks_.end()) break;
    const Entry& e = *it;
    if (rec.digest != e.digest ||
        rec.fingerprint != planBlockFingerprint(e.block, e.method, e.digest,
                                                drcPolicy_,
                                                e.drcRunner != nullptr))
      break;
    // A non-resumable verdict (or one that carried live DRC diagnostics the
    // journal cannot replay) re-runs its own block only; later records are
    // still individually admissible.
    if (!isResumableVerdict(rec.result) || rec.hasDrc ||
        rec.result.drc.has_value())
      continue;
    it->resumedResult = rec.result;
    it->resumedResult->resumed = true;
    ++admitted;
  }
  return admitted;
}

BlockResult VerificationPlan::takeResumed(Entry& e) {
  BlockResult r = std::move(*e.resumedResult);
  e.resumedResult.reset();
  // Seed the incremental cache exactly as the recorded clean run did, and
  // re-journal the record so the fresh WAL covers this run completely.
  e.lastCleanDigest = e.digest;
  e.lastDetail = r.detail;
  e.lastSeconds = r.seconds;
  journalAppend(e, r);
  return r;
}

namespace {
void tally(PlanReport& report, const BlockResult& r) {
  report.totalSeconds += r.seconds;
  if (r.inconclusive)
    ++report.inconclusive;
  else
    ++(r.passed ? report.verified : report.failed);
  if (r.blockedByDrc) ++report.blocked;
  if (r.faulted) ++report.faulted;
  if (r.degraded) ++report.degraded;
  if (r.resumed) ++report.resumed;
}
}  // namespace

PlanReport VerificationPlan::runAll() {
  PlanReport report;
  for (Entry& e : blocks_) {
    BlockResult r = e.resumedResult.has_value() ? takeResumed(e) : runEntry(e);
    tally(report, r);
    report.blocks.push_back(std::move(r));
  }
  return report;
}

PlanReport VerificationPlan::runIncremental() {
  PlanReport report;
  for (Entry& e : blocks_) {
    if (e.resumedResult.has_value()) {
      BlockResult r = takeResumed(e);
      tally(report, r);
      report.blocks.push_back(std::move(r));
      continue;
    }
    if (e.lastCleanDigest.has_value() && *e.lastCleanDigest == e.digest) {
      BlockResult r;
      r.block = e.block;
      r.method = e.method;
      r.passed = true;
      r.skippedUnchanged = true;
      r.attempts = 0;  // nothing ran; the default 1 would claim an attempt
      r.detail = "unchanged (" + e.lastDetail + ")";
      ++report.skipped;
      report.blocks.push_back(std::move(r));
      continue;
    }
    BlockResult r = runEntry(e);
    tally(report, r);
    report.blocks.push_back(std::move(r));
  }
  return report;
}

}  // namespace dfv::core
