// Parallel plan execution: a work-stealing thread pool, a solver-portfolio
// racer, and a depth-split parallel BMC driver.
//
// The paper's methodology pays off at system scale when many blocks are
// verified against many scenarios; every layer below core is deliberately
// deterministic and single-threaded, so this file is where concurrency is
// allowed to exist — and where it is fenced so determinism survives:
//
//   * ParallelExecutor — a small work-stealing pool (per-worker LIFO
//     deques, FIFO steals, a global inbox for external submissions).
//     wait() *helps*: a task that spawns subtasks and waits for them runs
//     pending work itself instead of blocking a worker, so nested
//     fan-out (a block task racing portfolio members) cannot deadlock a
//     fixed-size pool.
//   * Portfolio racing — buildPortfolio() derives diversified but fully
//     deterministic SecOptions variants (solver seed, phase saving,
//     restart policy, optionally fraig) and racePortfolio() runs them
//     concurrently, takes the first decisive verdict, and cancels the
//     losers through sat::Budget::cancel — cooperative, never a thread
//     kill, so every solver stays valid.  WHICH member wins may depend on
//     scheduling; WHAT the winner computed never does: re-running the
//     recorded winner's options on one thread reproduces its verdict and
//     solver statistics bit-for-bit (asserted by tests/parallel_test.cpp).
//   * checkBmcParallel — fans one SEC problem's BMC transactions out as
//     independent depth tasks (SecOptions::bmcStartTransaction) plus an
//     induction task, and merges verdicts in depth order so the outcome
//     matches the serial engine's.
//
// Fault injection composes: tasks that verify blocks or race members
// install a per-task clone of the caller's injector (fault::ScopedInjector
// proto copy), so the pure (seed, site, hit) firing contract holds per
// worker regardless of how tasks are scheduled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sec/engine.h"
#include "sec/transaction.h"

namespace dfv::core {

/// A fixed-size work-stealing thread pool.  Tasks are grouped: submit()
/// attaches each task to a TaskGroup and wait() blocks until that group
/// drains, executing pending tasks itself while it waits (helping), so
/// tasks may submit and wait on subgroups freely.  Tasks must not throw;
/// a task that does poisons its group and wait() rethrows the first
/// exception after the group drains.
class ParallelExecutor {
 public:
  /// `workers` threads are spawned (0 = std::thread::hardware_concurrency,
  /// min 1).  The submitting thread is not counted; it only runs tasks
  /// while inside wait().
  explicit ParallelExecutor(unsigned workers = 0);
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;
  /// All groups must have been wait()ed: destroying an executor with
  /// pending tasks is a contract violation (DFV_CHECK).
  ~ParallelExecutor();

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// A join point for a batch of tasks.  Not reusable across executors;
  /// reusable for successive batches on the same executor once drained.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ParallelExecutor;
    std::atomic<std::size_t> pending_{0};
    std::mutex mu_;  // guards exception_
    std::exception_ptr exception_;
  };

  /// Enqueues `fn`.  Called from a worker thread it pushes onto that
  /// worker's own deque (LIFO — depth-first, cache-warm); from any other
  /// thread it goes to the global inbox (FIFO — submission order).
  void submit(TaskGroup& group, std::function<void()> fn);

  /// Runs pending tasks (any group's) until `group` drains, then returns.
  /// Rethrows the first exception a task of this group threw, if any.
  void wait(TaskGroup& group);

 private:
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void workerLoop(unsigned index);
  /// Pops the next runnable task for `index` (own deque back, inbox front,
  /// then steal other deques front).  index == workers() means "external
  /// helper": inbox first, then steal.  Caller must hold mu_.
  bool popTask(unsigned index, Task& out);
  void runTask(Task task);

  mutable std::mutex mu_;  // guards inbox_, deques_, shutdown_
  std::condition_variable cv_;
  std::deque<Task> inbox_;
  std::vector<std::deque<Task>> deques_;  // one per worker
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> pendingTotal_{0};
  bool shutdown_ = false;
};

/// How buildPortfolio diversifies SecOptions into racing members.  Member
/// 0 is always the unmodified base; members 1.. cycle deterministically
/// through {geometric restarts, phase saving off, fraig toggled, rewrite
/// toggled, inprocessing toggled} x a per-member solver seed.  Everything
/// derives from (base, this struct) — no RNG, no clock — so the same
/// inputs always name the same portfolio.
struct PortfolioOptions {
  unsigned members = 3;  ///< total racers, including the base (1 = no race)
  bool varySeed = true;
  bool varyPhaseSaving = true;
  bool varyRestartPolicy = true;
  /// Off by default: fraig-off members lose the repo's main rescue for
  /// hard miters (see CLAUDE.md), so only opt in where base fraig-on
  /// might itself be the pathological configuration.
  bool varyFraig = false;
  /// Toggle DAG-aware rewriting off on some members.  Safe either way —
  /// the rewrite never changes verdicts — so this trades its (small)
  /// up-front cost against the smaller cone on a per-member basis.
  bool varyRewrite = true;
  /// Toggle CDCL inprocessing off on some members: vivification and BVE
  /// pay off on long solves and cost a little on short ones, which is
  /// exactly the uncertainty a portfolio exists to hedge.
  bool varyInprocess = true;
  std::uint64_t seedBase = 0x5eedbeef;
};

/// One racer: index in the portfolio, a stable human-readable name
/// (recorded in reports as portfolio_winner_name), and the options to run.
struct PortfolioMember {
  unsigned index = 0;
  std::string name;
  sec::SecOptions options;
};

/// Derives the deterministic member list (see PortfolioOptions).  The
/// returned options carry no cancel flags; racePortfolio installs those.
std::vector<PortfolioMember> buildPortfolio(const sec::SecOptions& base,
                                            const PortfolioOptions& opts);

/// What one member did during a race.  Loser results are still recorded —
/// their stats describe the truncated run and vary with scheduling; only
/// the winner's row is a deterministic replay fingerprint.
struct MemberAttempt {
  unsigned index = 0;
  std::string name;
  sec::SecResult result;
  bool cancelled = false;  ///< returned inconclusive with the flag raised
  bool faulted = false;    ///< the runner threw; `error` has the message
  std::string error;
  double seconds = 0.0;
  std::uint64_t faultInjections = 0;
};

/// Result of racing a portfolio.  winner == -1 means no member reached a
/// decisive (non-inconclusive) verdict: callers should treat the block as
/// inconclusive using attempts[0] (deterministic choice), or faulted when
/// attempts[0].faulted.
struct PortfolioOutcome {
  int winner = -1;
  std::vector<MemberAttempt> attempts;  ///< in member order
};

/// Races `members` over `runner` on `exec`.  The first decisive verdict
/// wins and raises the shared cancel flag (wired into each member's
/// bmc/induction/fraig budgets); losers observe it at their next budget
/// check and return kInconclusive.  Each member task installs a fresh
/// clone of the caller's fault injector (when one is live), so injection
/// schedules are per-member deterministic.  Safe to call from inside an
/// executor task (wait() helps).
PortfolioOutcome racePortfolio(
    ParallelExecutor& exec, const std::vector<PortfolioMember>& members,
    const std::function<sec::SecResult(const sec::SecOptions&)>& runner);

/// Runs one SEC problem's BMC phase as independent per-transaction depth
/// tasks (plus an induction task when options.tryInduction), merged in
/// depth order so the verdict — and a counterexample's failing
/// transaction — match the serial engine's.  Each depth task re-derives
/// slice/absint and re-unrolls up to its depth (that duplicated unrolling
/// is the price of the parallelism; stats.aigNodes sums all shards).
/// When a depth finds a counterexample or exhausts its budget, deeper
/// tasks and the induction task are cancelled cooperatively.
/// `options.bmcStartTransaction` must be 0 (the driver owns the split).
sec::SecResult checkBmcParallel(ParallelExecutor& exec,
                                const sec::SecProblem& problem,
                                const sec::SecOptions& options);

}  // namespace dfv::core
