// Deterministic fault injection for the DFV flow.
//
// A production verification flow must survive the runs that do not finish:
// solver budget exhaustion, contract violations inside a runner, corrupted
// co-simulation data.  Those paths are exactly the ones ordinary tests never
// reach, so this subsystem makes them reachable *on purpose* — the same
// mutation-style methodology bench_drc applies to designs, applied to the
// verification tools themselves.
//
// Instrumented code declares *sites* (a fixed enum: solver entry, SEC phase
// boundaries, scoreboard samples).  A test or bench installs a ScopedInjector
// and arms a site with a Policy; every pass through the site asks the
// injector whether to misbehave this time.  Determinism is the contract:
//   * with no injector installed, every site is a single pointer-load no-op
//     and behavior is bit-identical to an uninstrumented build;
//   * with an injector, firing is a pure function of (seed, site, nth-hit) —
//     the same program run twice injects at exactly the same points.
//
// Layering: fault sits beside common (it depends on nothing but check.h), so
// every lower layer — sat, sec, cosim — may thread sites through.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"

namespace dfv::fault {

/// Instrumented locations.  Each value is one *site class*; a site is hit
/// many times per run (once per solve call, per SEC phase, per sample).
enum class Site : unsigned {
  kSolverSolve,        ///< entry of sat::Solver::solve
  kSecBmcPhase,        ///< before each BMC transaction's solves
  kSecInductionPhase,  ///< before the inductive-step solve
  kCosimSample,        ///< each scoreboard observe()
  kJournalAppend,      ///< each core::Journal record append (write path)
  kJournalFsync,       ///< each fsync of the journal's WAL fd
  kJournalCommit,      ///< the atomic-rename header commit
};
inline constexpr unsigned kNumSites = 7;

const char* siteName(Site s);

/// What an armed site does when it fires.  Sites apply the policies that
/// make sense for them (a solver cannot corrupt a sample); an inapplicable
/// policy still counts as an injection but has no behavioral effect, so a
/// full site x policy matrix is always safe to run.
enum class Policy : unsigned {
  kNone,             ///< not armed / did not fire this hit
  kThrowCheckError,  ///< throw dfv::CheckError from the site
  kSpuriousUnknown,  ///< solver-shaped sites report sat::Result::kUnknown
  kExhaustBudget,    ///< budgeted sites report their budget expired early
  kCorruptSample,    ///< cosim sample sites flip the observed value's LSB
  kTornWrite,        ///< journal append writes a truncated frame (crash model)
};
inline constexpr unsigned kNumPolicies = 6;  // including kNone

const char* policyName(Policy p);

/// The site-id -> policy registry.  Construct, arm sites, install via
/// ScopedInjector.  All firing decisions are deterministic in (seed, site,
/// nth-hit); nothing here reads clocks or global RNG state.
class Injector {
 public:
  explicit Injector(std::uint64_t seed = 0) : seed_(seed) {}

  /// Arms `site`: `policy` fires on the `nthHit`-th pass through the site
  /// (1-based) and, when `period` is nonzero, every `period` hits after
  /// that.  `period` 0 fires exactly once.
  void arm(Site site, Policy policy, std::uint64_t nthHit = 1,
           std::uint64_t period = 0);

  /// Arms `site` probabilistically: each pass fires with probability
  /// `probability`, decided by hashing (seed, site, hit-index) — two runs
  /// with the same seed inject at exactly the same hits.
  void armRandom(Site site, Policy policy, double probability);

  void disarm(Site site);

  /// Counts one pass through `site` and returns the policy to apply now
  /// (kNone when unarmed or not firing on this hit).  Called by the
  /// instrumented code, never by users.
  Policy onHit(Site site);

  std::uint64_t hits(Site site) const { return state(site).hits; }
  std::uint64_t injections(Site site) const { return state(site).injections; }
  std::uint64_t totalInjections() const;
  std::uint64_t seed() const { return seed_; }

  /// A copy of this injector's seed and arming with all hit/injection
  /// counters reset to zero — the per-worker clone the parallel executor
  /// installs so each block observes its own fresh (seed, site, hit)
  /// stream regardless of how blocks are scheduled across threads.
  Injector armedCopy() const;

 private:
  struct SiteState {
    Policy policy = Policy::kNone;
    bool probabilistic = false;
    std::uint64_t nthHit = 1;
    std::uint64_t period = 0;
    std::uint64_t probabilityBar = 0;  // fire when mix < bar
    std::uint64_t hits = 0;
    std::uint64_t injections = 0;
  };

  const SiteState& state(Site s) const {
    const auto i = static_cast<unsigned>(s);
    DFV_CHECK_MSG(i < kNumSites, "bad fault site " << i);
    return sites_[i];
  }
  SiteState& state(Site s) {
    return const_cast<SiteState&>(
        static_cast<const Injector*>(this)->state(s));
  }

  std::uint64_t seed_;
  std::array<SiteState, kNumSites> sites_{};
};

/// The current thread's injector, or nullptr when fault injection is off
/// (the default).  The registry is thread_local: each ParallelExecutor
/// worker sees only the injector its own task installed, so counters are
/// never shared across threads and the pure (seed, site, hit) firing
/// contract holds per worker with no atomics on the hot path.  On a
/// single-threaded run this behaves exactly as the old process-global
/// pointer did.
Injector* currentInjector();

/// RAII installation: sites fire only while a ScopedInjector is alive on
/// the *installing thread*.  Nesting installs the inner one and restores
/// the outer on destruction.  The proto-copy constructor is how parallel
/// block tasks inherit the arming a test or bench configured on the main
/// thread: counters restart at zero, so every block replays the same
/// deterministic injection schedule no matter which worker runs it.
class ScopedInjector {
 public:
  explicit ScopedInjector(std::uint64_t seed = 0);
  /// Installs `proto.armedCopy()` (same seed/arming, fresh counters).
  explicit ScopedInjector(const Injector& proto);
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;
  ~ScopedInjector();

  Injector& injector() { return injector_; }

 private:
  Injector injector_;
  Injector* prev_;
};

/// The hook instrumented code calls: one pointer load when injection is off.
inline Policy onSiteHit(Site s) {
  Injector* inj = currentInjector();
  return inj == nullptr ? Policy::kNone : inj->onHit(s);
}

/// Shorthand for sites whose only applicable reaction is throwing.
[[noreturn]] void throwInjected(Site s);

}  // namespace dfv::fault
