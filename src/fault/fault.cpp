#include "fault/fault.h"

#include <cmath>

namespace dfv::fault {

namespace {

/// splitmix64 finalizer — the firing decision must be a pure function of
/// (seed, site, hit-index), never of clocks or global RNG state.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Thread-local so concurrent workers each run their own injector (or none):
// installation on one thread is invisible to every other thread.
thread_local Injector* g_injector = nullptr;

}  // namespace

const char* siteName(Site s) {
  switch (s) {
    case Site::kSolverSolve: return "solver.solve";
    case Site::kSecBmcPhase: return "sec.bmc-phase";
    case Site::kSecInductionPhase: return "sec.induction-phase";
    case Site::kCosimSample: return "cosim.sample";
    case Site::kJournalAppend: return "journal.append";
    case Site::kJournalFsync: return "journal.fsync";
    case Site::kJournalCommit: return "journal.commit";
  }
  DFV_UNREACHABLE("bad fault site");
}

const char* policyName(Policy p) {
  switch (p) {
    case Policy::kNone: return "none";
    case Policy::kThrowCheckError: return "throw-check-error";
    case Policy::kSpuriousUnknown: return "spurious-unknown";
    case Policy::kExhaustBudget: return "exhaust-budget";
    case Policy::kCorruptSample: return "corrupt-sample";
    case Policy::kTornWrite: return "torn-write";
  }
  DFV_UNREACHABLE("bad fault policy");
}

void Injector::arm(Site site, Policy policy, std::uint64_t nthHit,
                   std::uint64_t period) {
  DFV_CHECK_MSG(policy != Policy::kNone, "arm with kNone — use disarm()");
  DFV_CHECK_MSG(nthHit >= 1, "nthHit is 1-based");
  SiteState& s = state(site);
  s.policy = policy;
  s.probabilistic = false;
  s.nthHit = nthHit;
  s.period = period;
}

void Injector::armRandom(Site site, Policy policy, double probability) {
  DFV_CHECK_MSG(policy != Policy::kNone, "arm with kNone — use disarm()");
  DFV_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                "probability " << probability << " outside [0,1]");
  SiteState& s = state(site);
  s.policy = policy;
  s.probabilistic = true;
  // Map [0,1] onto the u64 range; 1.0 must fire on every hit.
  s.probabilityBar =
      probability >= 1.0
          ? ~std::uint64_t{0}
          : static_cast<std::uint64_t>(
                std::ldexp(probability, 64));
}

void Injector::disarm(Site site) { state(site) = SiteState{}; }

Policy Injector::onHit(Site site) {
  SiteState& s = state(site);
  const std::uint64_t hit = ++s.hits;
  if (s.policy == Policy::kNone) return Policy::kNone;
  bool fire;
  if (s.probabilistic) {
    const std::uint64_t h =
        mix(seed_ + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(
                                                 static_cast<unsigned>(site)) +
                                             1) +
            hit);
    fire = s.probabilityBar == ~std::uint64_t{0} || h < s.probabilityBar;
  } else if (hit < s.nthHit) {
    fire = false;
  } else if (hit == s.nthHit) {
    fire = true;
  } else {
    fire = s.period != 0 && (hit - s.nthHit) % s.period == 0;
  }
  if (!fire) return Policy::kNone;
  ++s.injections;
  return s.policy;
}

std::uint64_t Injector::totalInjections() const {
  std::uint64_t total = 0;
  for (const SiteState& s : sites_) total += s.injections;
  return total;
}

Injector Injector::armedCopy() const {
  Injector copy(seed_);
  copy.sites_ = sites_;
  for (SiteState& s : copy.sites_) {
    s.hits = 0;
    s.injections = 0;
  }
  return copy;
}

Injector* currentInjector() { return g_injector; }

ScopedInjector::ScopedInjector(std::uint64_t seed)
    : injector_(seed), prev_(g_injector) {
  g_injector = &injector_;
}

ScopedInjector::ScopedInjector(const Injector& proto)
    : injector_(proto.armedCopy()), prev_(g_injector) {
  g_injector = &injector_;
}

ScopedInjector::~ScopedInjector() { g_injector = prev_; }

void throwInjected(Site s) {
  throw CheckError(std::string("injected fault at ") + siteName(s));
}

}  // namespace dfv::fault
