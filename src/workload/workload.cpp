#include "workload/workload.h"

#include <algorithm>

namespace dfv::workload {

Image makeTestImage(unsigned width, unsigned height, std::uint64_t seed) {
  DFV_CHECK_MSG(width >= 4 && height >= 4, "image too small");
  Rng rng(seed);
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.assign(static_cast<std::size_t>(width) * height, 0);
  // Diagonal gradient base.
  for (unsigned y = 0; y < height; ++y)
    for (unsigned x = 0; x < width; ++x)
      img.at(x, y) = static_cast<std::uint8_t>((x * 255 / width +
                                                y * 255 / height) /
                                               2);
  // A few solid rectangles (edges for the convolution to find).
  const unsigned rects = 3 + static_cast<unsigned>(rng.below(3));
  for (unsigned r = 0; r < rects; ++r) {
    const unsigned rx = static_cast<unsigned>(rng.below(width - 2));
    const unsigned ry = static_cast<unsigned>(rng.below(height - 2));
    const unsigned rw = 1 + static_cast<unsigned>(rng.below(width - rx - 1));
    const unsigned rh = 1 + static_cast<unsigned>(rng.below(height - ry - 1));
    const auto value = static_cast<std::uint8_t>(rng.next());
    for (unsigned y = ry; y < std::min(height, ry + rh); ++y)
      for (unsigned x = rx; x < std::min(width, rx + rw); ++x)
        img.at(x, y) = value;
  }
  // Sparse impulse noise.
  const std::size_t impulses = img.pixels.size() / 50;
  for (std::size_t i = 0; i < impulses; ++i)
    img.pixels[rng.below(img.pixels.size())] =
        static_cast<std::uint8_t>(rng.next());
  return img;
}

std::vector<bv::BitVector> makeSampleStream(std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bv::BitVector> out;
  out.reserve(count);
  const unsigned p1 = 7 + static_cast<unsigned>(rng.below(9));
  const unsigned p2 = 23 + static_cast<unsigned>(rng.below(17));
  for (std::size_t i = 0; i < count; ++i) {
    int v = ((i / p1) % 2 == 0 ? 40 : -40) + ((i / p2) % 2 == 0 ? 25 : -25);
    v += static_cast<int>(rng.below(21)) - 10;  // noise in [-10, 10]
    v = std::clamp(v, -128, 127);
    out.push_back(bv::BitVector::fromInt(8, v));
  }
  return out;
}

std::vector<MemRequest> makeMemTrace(std::size_t count, std::uint64_t seed,
                                     unsigned hotRegions) {
  DFV_CHECK(hotRegions >= 1);
  Rng rng(seed);
  std::vector<std::uint8_t> bases;
  for (unsigned r = 0; r < hotRegions; ++r)
    bases.push_back(static_cast<std::uint8_t>(rng.next()));
  std::vector<MemRequest> trace;
  trace.reserve(count);
  std::uint8_t cursor = bases[0];
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.chance(1, 10)) {
      // Far jump to another hot region.
      cursor = bases[rng.below(bases.size())];
    } else if (rng.chance(1, 2)) {
      // Sequential walk within the region.
      cursor = static_cast<std::uint8_t>(cursor + 1);
    }
    MemRequest req;
    req.write = rng.chance(1, 4);
    req.addr = static_cast<std::uint8_t>(cursor + rng.below(4));
    req.data = static_cast<std::uint8_t>(rng.next());
    trace.push_back(req);
  }
  return trace;
}

}  // namespace dfv::workload
