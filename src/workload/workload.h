// Deterministic workload generation for co-simulation and benches.
//
// The paper's SLM validation step (§2, step 1) runs *actual applications* on
// the system-level model — images for a graphics chip, traffic for a
// networking part.  We cannot ship production content, so these generators
// synthesize structured stimulus with the same role: deterministic, seeded,
// and with realistic spatial/temporal structure (gradients + shapes + noise
// for images, bursty arrivals for request streams) rather than white noise.
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/check.h"

namespace dfv::workload {

/// splitmix64: tiny, deterministic, fine statistical quality for stimulus.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  /// True with probability num/den.
  bool chance(std::uint32_t num, std::uint32_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

/// A grayscale image, 8 bits per pixel, row-major.
struct Image {
  unsigned width = 0;
  unsigned height = 0;
  std::vector<std::uint8_t> pixels;

  std::uint8_t at(unsigned x, unsigned y) const {
    DFV_CHECK(x < width && y < height);
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t& at(unsigned x, unsigned y) {
    DFV_CHECK(x < width && y < height);
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
};

/// Synthesizes a test image: smooth gradient + rectangles + impulse noise
/// (edges and flat regions exercise a convolution like real content does).
Image makeTestImage(unsigned width, unsigned height, std::uint64_t seed);

/// A stream of signed 8-bit samples: sum of two square waves plus noise
/// (the "signal processing" stimulus of §1).
std::vector<bv::BitVector> makeSampleStream(std::size_t count,
                                            std::uint64_t seed);

/// Memory request stream with spatial locality: mostly hits within a few
/// hot regions, occasional far jumps (exercises a cache realistically).
struct MemRequest {
  bool write;
  std::uint8_t addr;
  std::uint8_t data;
};
std::vector<MemRequest> makeMemTrace(std::size_t count, std::uint64_t seed,
                                     unsigned hotRegions = 4);

}  // namespace dfv::workload
