// Kernel-based (cycle-approximate) SLM modules for the reference designs.
//
// These are the "software prototyping / verification" abstraction level of
// §1: the same computational kernels as the untimed golden models
// (FirKernel, convWindow), wrapped in the §4.4 communication style — FIFO
// channels and a clock on the coroutine kernel.  Because computation and
// communication are orthogonal, each module is a drop-in peer of the
// corresponding RTL block behind cosim::RtlBlockInSlm: a system can swap
// the SLM module for the wrapped RTL (or back) without touching its
// neighbors — the §4.2 plug-and-play property.
#pragma once

#include "designs/conv.h"
#include "designs/fir.h"
#include "slm/channels.h"
#include "slm/kernel.h"

namespace dfv::designs {

/// FIR as an SLM kernel module: one sample consumed per clock edge (when
/// available), outputs pushed to the result FIFO.
class FirSlmModule : public slm::Module {
 public:
  FirSlmModule(slm::Kernel& kernel, std::string name, slm::Clock& clock,
               slm::Fifo<bv::BitVector>& input,
               slm::Fifo<bv::BitVector>& output)
      : slm::Module(kernel, std::move(name)),
        clock_(clock),
        input_(input),
        output_(output) {
    kernel.spawn(run(), this->name() + ".run");
  }

 private:
  slm::Process run() {
    for (;;) {
      co_await clock_.rising();
      auto sample = input_.tryGet();
      if (!sample.has_value()) continue;
      auto y = kernel_.push(static_cast<std::int8_t>(sample->toInt64()));
      if (y.has_value()) {
        const bool pushed = output_.tryPut(y->toBitVector());
        DFV_CHECK_MSG(pushed, "fir output fifo overflow");
      }
    }
  }

  FirKernel kernel_;
  slm::Clock& clock_;
  slm::Fifo<bv::BitVector>& input_;
  slm::Fifo<bv::BitVector>& output_;
};

/// conv3x3 as an SLM kernel module: raster pixel stream in, interior
/// pixels out, built on the same convWindow() the golden model uses.
class ConvSlmModule : public slm::Module {
 public:
  ConvSlmModule(slm::Kernel& kernel, std::string name, unsigned imageWidth,
                ConvKernel convKernel, slm::Clock& clock,
                slm::Fifo<bv::BitVector>& input,
                slm::Fifo<bv::BitVector>& output)
      : slm::Module(kernel, std::move(name)),
        width_(imageWidth),
        convKernel_(convKernel),
        clock_(clock),
        input_(input),
        output_(output),
        history_(2 * imageWidth + 3, 0) {
    DFV_CHECK_MSG(imageWidth >= 4, "image too narrow");
    kernel.spawn(run(), this->name() + ".run");
  }

 private:
  slm::Process run() {
    unsigned x = 0, y = 0;
    for (;;) {
      co_await clock_.rising();
      auto px = input_.tryGet();
      if (!px.has_value()) continue;
      for (std::size_t i = history_.size() - 1; i > 0; --i)
        history_[i] = history_[i - 1];
      history_[0] = static_cast<std::uint8_t>(px->toUint64());
      if (x >= 2 && y >= 2) {
        const unsigned W = width_;
        const std::array<std::uint8_t, 9> window = {
            history_[2 * W + 2], history_[2 * W + 1], history_[2 * W],
            history_[W + 2],     history_[W + 1],     history_[W],
            history_[2],         history_[1],         history_[0]};
        const bool pushed = output_.tryPut(bv::BitVector::fromUint(
            8, convWindow(window, convKernel_)));
        DFV_CHECK_MSG(pushed, "conv output fifo overflow");
      }
      if (++x == width_) {
        x = 0;
        ++y;
      }
    }
  }

  unsigned width_;
  ConvKernel convKernel_;
  slm::Clock& clock_;
  slm::Fifo<bv::BitVector>& input_;
  slm::Fifo<bv::BitVector>& output_;
  std::vector<std::uint8_t> history_;
};

}  // namespace dfv::designs
