#include "designs/truncsum.h"

#include "rtl/lower.h"

namespace dfv::designs {

ir::TransitionSystem makeTruncsumSlmTs(ir::Context& ctx) {
  // Stateless: the whole transaction folds combinationally, so induction
  // needs no coupling invariants (start reloads the RTL accumulator).
  ir::TransitionSystem ts(ctx, "truncsum_slm");
  const unsigned w = kTruncsumOutWidth;
  ir::NodeRef cap = ctx.constantUint(w, kTruncsumCap);
  ir::NodeRef acc = nullptr;
  for (unsigned i = 0; i < kTruncsumSamples; ++i) {
    ir::NodeRef s = ctx.zext(ts.addInput("s.s" + std::to_string(i), 8), w);
    if (acc == nullptr) {
      acc = s;
      continue;
    }
    ir::NodeRef sum = ctx.add(acc, s);
    acc = ctx.mux(ctx.ugt(sum, cap), cap, sum);
  }
  ts.addOutput("sum", acc);
  return ts;
}

rtl::Module makeTruncsumRtl(bool narrow) {
  const unsigned w = kTruncsumAccWidth;
  rtl::Module m(narrow ? "truncsum_narrow" : "truncsum");
  rtl::NetId start = m.addInput("start", 1);
  rtl::NetId sample = m.addInput("sample", 8);
  const unsigned regW = narrow ? kTruncsumNarrowWidth : w;
  rtl::NetId acc = m.addDff("acc", regW, 0);

  rtl::NetId sum = m.opAdd(m.opZExt(acc, w), m.opZExt(sample, w));
  rtl::NetId cap = m.constantUint(w, kTruncsumCap);
  rtl::NetId clamped = m.opMux(m.opULt(cap, sum), cap, sum);
  rtl::NetId next = m.opMux(start, m.opZExt(sample, w), clamped);
  // The bug: the register and the output bus were sized for one sample, not
  // for the clamp's range — extract[7:0] drops live bits [10:8].
  rtl::NetId stored = narrow ? m.opExtract(next, kTruncsumNarrowWidth - 1, 0)
                             : next;
  m.connectDff(acc, stored);
  m.addOutput("sum", m.opZExt(stored, kTruncsumOutWidth));
  return m;
}

TruncsumSecSetup makeTruncsumSecProblem(ir::Context& ctx, bool narrow) {
  TruncsumSecSetup setup;
  setup.slm =
      std::make_unique<ir::TransitionSystem>(makeTruncsumSlmTs(ctx));
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(makeTruncsumRtl(narrow), ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(
      ctx, *setup.slm, 1, *setup.rtl, kTruncsumSamples);
  sec::SecProblem& p = *setup.problem;
  for (unsigned i = 0; i < kTruncsumSamples; ++i) {
    ir::NodeRef v = p.declareTxnVar("s" + std::to_string(i), 8);
    p.bindInput(sec::Side::kSlm, "s.s" + std::to_string(i), 0, v);
    p.bindInput(sec::Side::kRtl, "r.sample", i, v);
    p.bindInput(sec::Side::kRtl, "r.start", i,
                ctx.constantUint(1, i == 0 ? 1 : 0));
  }
  p.checkOutputs("sum", 0, "sum", kTruncsumSamples - 1);
  return setup;
}

}  // namespace dfv::designs
