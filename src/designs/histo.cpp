#include "designs/histo.h"

#include "rtl/lower.h"

namespace dfv::designs {

ir::TransitionSystem makeHistoSlmTs(ir::Context& ctx) {
  ir::TransitionSystem ts(ctx, "histo_slm");
  const unsigned w = kHistoCountWidth;
  ir::NodeRef cap = ctx.constantUint(w, kHistoCap);
  std::vector<ir::NodeRef> samples(kHistoSamples);
  for (unsigned i = 0; i < kHistoSamples; ++i)
    samples[i] = ts.addInput("s.b" + std::to_string(i), kHistoIdxWidth);
  for (unsigned j = 0; j < kHistoBins; ++j) {
    ir::NodeRef bin = ts.addState("s.bin" + std::to_string(j), w, 0);
    ir::NodeRef jConst = ctx.constantUint(kHistoIdxWidth, j);
    // Same step shape as one RTL cycle: hit ? saturating increment : hold.
    ir::NodeRef acc = bin;
    for (unsigned i = 0; i < kHistoSamples; ++i) {
      ir::NodeRef inc =
          ctx.mux(ctx.eq(acc, cap), cap, ctx.add(acc, ctx.one(w)));
      acc = ctx.mux(ctx.eq(samples[i], jConst), inc, acc);
    }
    ts.setNext(bin, acc);
    ts.addOutput("count" + std::to_string(j), bin);
  }
  return ts;
}

rtl::Module makeHistoRtl() {
  const unsigned w = kHistoCountWidth;
  rtl::Module m("histo");
  rtl::NetId b = m.addInput("b", kHistoIdxWidth);
  rtl::NetId cap = m.constantUint(w, kHistoCap);
  for (unsigned j = 0; j < kHistoBins; ++j) {
    rtl::NetId bin = m.addDff("bin" + std::to_string(j), w, 0);
    rtl::NetId hit = m.opEq(b, m.constantUint(kHistoIdxWidth, j));
    rtl::NetId inc =
        m.opMux(m.opEq(bin, cap), cap, m.opAdd(bin, m.constantUint(w, 1)));
    m.connectDff(bin, m.opMux(hit, inc, bin));
    m.addOutput("count" + std::to_string(j), bin);
  }
  return m;
}

HistoSecSetup makeHistoSecProblem(ir::Context& ctx) {
  HistoSecSetup setup;
  setup.slm = std::make_unique<ir::TransitionSystem>(makeHistoSlmTs(ctx));
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(makeHistoRtl(), ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(
      ctx, *setup.slm, 1, *setup.rtl, kHistoSamples);
  sec::SecProblem& p = *setup.problem;
  for (unsigned i = 0; i < kHistoSamples; ++i) {
    ir::NodeRef v = p.declareTxnVar("b" + std::to_string(i), kHistoIdxWidth);
    p.bindInput(sec::Side::kSlm, "s.b" + std::to_string(i), 0, v);
    p.bindInput(sec::Side::kRtl, "r.b", i, v);
  }
  for (unsigned j = 0; j < kHistoBins; ++j) {
    const std::string n = std::to_string(j);
    p.checkOutputs("count" + n, 0, "count" + n, 0);
    p.addCouplingInvariant(
        ctx.eq(setup.slm->findState("s.bin" + n)->current,
               setup.rtl->findState("r.bin" + n)->current));
  }
  return setup;
}

}  // namespace dfv::designs
