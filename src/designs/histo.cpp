#include "designs/histo.h"

#include "rtl/lower.h"

namespace dfv::designs {

ir::TransitionSystem makeHistoSlmTs(ir::Context& ctx) {
  ir::TransitionSystem ts(ctx, "histo_slm");
  const unsigned w = kHistoCountWidth;
  ir::NodeRef cap = ctx.constantUint(w, kHistoCap);
  std::vector<ir::NodeRef> samples(kHistoSamples);
  for (unsigned i = 0; i < kHistoSamples; ++i)
    samples[i] = ts.addInput("s.b" + std::to_string(i), kHistoIdxWidth);
  for (unsigned j = 0; j < kHistoBins; ++j) {
    ir::NodeRef bin = ts.addState("s.bin" + std::to_string(j), w, 0);
    ir::NodeRef jConst = ctx.constantUint(kHistoIdxWidth, j);
    // Same step shape as one RTL cycle: hit ? saturating increment : hold.
    ir::NodeRef acc = bin;
    for (unsigned i = 0; i < kHistoSamples; ++i) {
      ir::NodeRef inc =
          ctx.mux(ctx.eq(acc, cap), cap, ctx.add(acc, ctx.one(w)));
      acc = ctx.mux(ctx.eq(samples[i], jConst), inc, acc);
    }
    ts.setNext(bin, acc);
    ts.addOutput("count" + std::to_string(j), bin);
  }
  return ts;
}

rtl::Module makeHistoRtl() {
  const unsigned w = kHistoCountWidth;
  rtl::Module m("histo");
  rtl::NetId b = m.addInput("b", kHistoIdxWidth);
  rtl::NetId cap = m.constantUint(w, kHistoCap);
  for (unsigned j = 0; j < kHistoBins; ++j) {
    rtl::NetId bin = m.addDff("bin" + std::to_string(j), w, 0);
    rtl::NetId hit = m.opEq(b, m.constantUint(kHistoIdxWidth, j));
    rtl::NetId inc =
        m.opMux(m.opEq(bin, cap), cap, m.opAdd(bin, m.constantUint(w, 1)));
    m.connectDff(bin, m.opMux(hit, inc, bin));
    m.addOutput("count" + std::to_string(j), bin);
  }
  return m;
}

HistoSecSetup makeHistoSecProblem(ir::Context& ctx) {
  HistoSecSetup setup;
  setup.slm = std::make_unique<ir::TransitionSystem>(makeHistoSlmTs(ctx));
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(makeHistoRtl(), ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(
      ctx, *setup.slm, 1, *setup.rtl, kHistoSamples);
  sec::SecProblem& p = *setup.problem;
  for (unsigned i = 0; i < kHistoSamples; ++i) {
    ir::NodeRef v = p.declareTxnVar("b" + std::to_string(i), kHistoIdxWidth);
    p.bindInput(sec::Side::kSlm, "s.b" + std::to_string(i), 0, v);
    p.bindInput(sec::Side::kRtl, "r.b", i, v);
  }
  for (unsigned j = 0; j < kHistoBins; ++j) {
    const std::string n = std::to_string(j);
    p.checkOutputs("count" + n, 0, "count" + n, 0);
    p.addCouplingInvariant(
        ctx.eq(setup.slm->findState("s.bin" + n)->current,
               setup.rtl->findState("r.bin" + n)->current));
  }
  // Industrial RTL carries observability state the SLM never models; histo's
  // RTL side gets a debug-capture block to stand in for it.  The capture
  // enable resets disarmed and can only be cleared, so the ternary fixpoint
  // proves it stuck at 0, and the capture registers it gates feed only the
  // unchecked dbg_* outputs, so the COI pass severs them — none of it may
  // appear in the BMC or induction graphs with SecOptions::slice on
  // (bench_sec_ablation measures the reduction; this is deliberately the
  // shape dfv::slice exists for, the way the saturating bins were built to
  // showcase dfv::absint).  Added after lowering so the rtl::Module used by
  // simulation, Verilog emission and cosim stays untouched.
  {
    ir::TransitionSystem& r = *setup.rtl;
    const unsigned w = kHistoCountWidth;
    ir::NodeRef b = r.findInput("r.b");
    ir::NodeRef en = r.addState("r.dbg_en", 1, 0);
    // Disarm on any all-zero sample; never re-arm.  Ternary: and(0, X) = 0.
    r.setNext(en, ctx.bitAnd(en, ctx.redOr(b)));
    ir::NodeRef cap = ctx.constantUint(w, kHistoCap);
    // Saturating count of samples seen while armed.
    ir::NodeRef total = r.addState("r.dbg_total", w, 0);
    ir::NodeRef inc =
        ctx.mux(ctx.eq(total, cap), cap, ctx.add(total, ctx.one(w)));
    r.setNext(total, ctx.mux(en, inc, total));
    // Running min/max and last-value capture, all gated by the enable.
    ir::NodeRef lo = r.addState("r.dbg_min", w, kHistoCap);
    ir::NodeRef hi = r.addState("r.dbg_max", w, 0);
    ir::NodeRef bw = ctx.zext(b, w);
    r.setNext(lo, ctx.mux(ctx.bitAnd(en, ctx.ult(bw, lo)), bw, lo));
    r.setNext(hi, ctx.mux(ctx.bitAnd(en, ctx.ult(hi, bw)), bw, hi));
    ir::NodeRef last = r.addState("r.dbg_last", kHistoIdxWidth, 0);
    r.setNext(last, ctx.mux(en, b, last));
    // Free-running sample accumulator: NOT gated by the enable, so it is no
    // sequential constant — only the cone-of-influence pass removes it.
    ir::NodeRef sum = r.addState("r.dbg_sum", w, 0);
    r.setNext(sum, ctx.add(sum, ctx.zext(b, w)));
    r.addOutput("dbg_sum", sum);
    r.addOutput("dbg_total", total);
    r.addOutput("dbg_range", ctx.concat(hi, lo));
    r.addOutput("dbg_last", last);
  }
  return setup;
}

}  // namespace dfv::designs
