#include "designs/memsys.h"

#include "rtl/sim.h"

namespace dfv::designs {

std::vector<std::uint8_t> memGolden(
    const std::vector<workload::MemRequest>& trace) {
  std::uint8_t mem[256] = {0};
  std::vector<std::uint8_t> out;
  out.reserve(trace.size());
  for (const auto& req : trace) {
    if (req.write) {
      mem[req.addr] = req.data;
      out.push_back(req.data);  // writes echo the written value
    } else {
      out.push_back(mem[req.addr]);
    }
  }
  return out;
}

namespace {
constexpr unsigned kLines = 8;
constexpr unsigned kIdxW = 3;
constexpr unsigned kTagW = 5;
// FSM states.
constexpr unsigned kIdle = 0;
constexpr unsigned kMiss1 = 1;
constexpr unsigned kMiss2 = 2;
constexpr unsigned kFill = 3;
}  // namespace

rtl::Module makeCacheRtl() {
  rtl::Module m("cache");
  rtl::NetId reqValid = m.addInput("req_valid", 1);
  rtl::NetId reqWrite = m.addInput("req_write", 1);
  rtl::NetId reqAddr = m.addInput("req_addr", 8);
  rtl::NetId reqWdata = m.addInput("req_wdata", 8);

  // Cache state: per-line data/tag/valid registers.
  std::vector<rtl::NetId> lineData(kLines), lineTag(kLines), lineValid(kLines);
  for (unsigned i = 0; i < kLines; ++i) {
    lineData[i] = m.addDff("d" + std::to_string(i), 8, 0);
    lineTag[i] = m.addDff("t" + std::to_string(i), kTagW, 0);
    lineValid[i] = m.addDff("v" + std::to_string(i), 1, 0);
  }
  rtl::NetId state = m.addDff("state", 2, kIdle);
  rtl::NetId missAddr = m.addDff("miss_addr", 8, 0);

  // Backing memory: 256 x 8, synchronous read (1-cycle latency).
  const std::size_t backing = m.addMemory("backing", 8, 256);

  rtl::NetId idx = m.opExtract(reqAddr, kIdxW - 1, 0);
  rtl::NetId tag = m.opExtract(reqAddr, 7, kIdxW);
  // Line lookup: mux trees over the 8 lines.
  auto muxByIdx = [&](const std::vector<rtl::NetId>& nets, rtl::NetId sel) {
    rtl::NetId out = nets[0];
    for (unsigned i = 1; i < kLines; ++i) {
      rtl::NetId hit = m.opEq(sel, m.constantUint(kIdxW, i));
      out = m.opMux(hit, nets[i], out);
    }
    return out;
  };
  rtl::NetId curData = muxByIdx(lineData, idx);
  rtl::NetId curTag = muxByIdx(lineTag, idx);
  rtl::NetId curValid = muxByIdx(lineValid, idx);
  rtl::NetId hit = m.opAnd(curValid, m.opEq(curTag, tag));

  rtl::NetId isIdle = m.opEq(state, m.constantUint(2, kIdle));
  rtl::NetId isFill = m.opEq(state, m.constantUint(2, kFill));
  rtl::NetId accept = m.opAnd(isIdle, reqValid);
  rtl::NetId isRead = m.opNot(reqWrite);
  rtl::NetId readHit = m.opAnd(accept, m.opAnd(isRead, hit));
  rtl::NetId readMiss = m.opAnd(accept, m.opAnd(isRead, m.opNot(hit)));
  rtl::NetId doWrite = m.opAnd(accept, reqWrite);

  // Backing ports: reads for misses, write-through for stores.
  rtl::NetId raddr = m.opMux(readMiss, reqAddr, missAddr);
  rtl::NetId rdata = m.memReadPort(backing, raddr);
  m.memWritePort(backing, doWrite, reqAddr, reqWdata);

  // FSM.
  rtl::NetId one2 = m.constantUint(2, 1);
  rtl::NetId stateNext = m.opMux(
      isIdle, m.opMux(readMiss, m.constantUint(2, kMiss1), m.constantUint(2, kIdle)),
      m.opMux(m.opEq(state, m.constantUint(2, kFill)), m.constantUint(2, kIdle),
              m.opAdd(state, one2)));
  m.connectDff(state, stateNext);
  m.connectDff(missAddr, reqAddr, readMiss);

  // Line update: refill on kFill, write-through update on store hits.
  rtl::NetId missIdx = m.opExtract(missAddr, kIdxW - 1, 0);
  rtl::NetId missTag = m.opExtract(missAddr, 7, kIdxW);
  rtl::NetId writeHitAll = m.opAnd(doWrite, hit);
  for (unsigned i = 0; i < kLines; ++i) {
    rtl::NetId iConst = m.constantUint(kIdxW, i);
    rtl::NetId fillThis = m.opAnd(isFill, m.opEq(missIdx, iConst));
    rtl::NetId writeThis = m.opAnd(writeHitAll, m.opEq(idx, iConst));
    rtl::NetId dNext =
        m.opMux(fillThis, rdata, m.opMux(writeThis, reqWdata, lineData[i]));
    m.connectDff(lineData[i], dNext);
    m.connectDff(lineTag[i], m.opMux(fillThis, missTag, lineTag[i]));
    m.connectDff(lineValid[i],
                 m.opMux(fillThis, m.constantUint(1, 1), lineValid[i]));
  }

  // Responses: stores and read hits respond in the request cycle; misses
  // respond from the refill data in the kFill state.
  rtl::NetId respValid = m.opOr(doWrite, m.opOr(readHit, isFill));
  rtl::NetId respData =
      m.opMux(isFill, rdata, m.opMux(doWrite, reqWdata, curData));
  m.addOutput("req_ready", isIdle);
  m.addOutput("resp_valid", respValid);
  m.addOutput("resp_data", respData);
  return m;
}

MemRunResult runCache(const std::vector<workload::MemRequest>& trace) {
  rtl::Simulator sim(makeCacheRtl());
  MemRunResult result;
  std::size_t next = 0;
  std::vector<std::uint64_t> issueCycles;
  std::uint64_t cycle = 0;
  std::uint64_t guard = trace.size() * 8 + 64;
  while (result.responses.size() < trace.size()) {
    DFV_CHECK_MSG(cycle < guard, "cache run did not converge");
    sim.evalCombinational();
    const bool ready = !sim.outputValue("req_ready").isZero();
    // Issue combinationally in the same cycle the DUT is ready.
    if (ready && next < trace.size()) {
      sim.setInputUint("req_valid", 1);
      sim.setInputUint("req_write", trace[next].write ? 1 : 0);
      sim.setInputUint("req_addr", trace[next].addr);
      sim.setInputUint("req_wdata", trace[next].data);
      issueCycles.push_back(cycle);
      ++next;
    } else {
      sim.setInputUint("req_valid", 0);
      sim.setInputUint("req_write", 0);
      sim.setInputUint("req_addr", 0);
      sim.setInputUint("req_wdata", 0);
    }
    sim.evalCombinational();
    if (!sim.outputValue("resp_valid").isZero()) {
      result.responses.push_back(static_cast<std::uint8_t>(
          sim.outputValue("resp_data").toUint64()));
      const std::size_t respIdx = result.responses.size() - 1;
      const std::uint64_t latency = cycle - issueCycles[respIdx];
      result.latencies.push_back(latency);
      if (!trace[respIdx].write) {
        if (latency == 0)
          ++result.readHits;
        else
          ++result.readMisses;
      }
    }
    sim.clockEdge();
    ++cycle;
  }
  result.cyclesRun = cycle;
  return result;
}

}  // namespace dfv::designs
