// The memory-subsystem design pair: the paper's §3.2 latency-abstraction
// story.
//
// "The SLM may model a memory simply as a static array in C (accessed and
// written without any delay), while the RTL implements a real memory that
// has a delay of one clock cycle for memory reads. The RTL may even have a
// hierarchical memory with a cache, where the latency of a memory read is a
// function of the state of the cache."
//
// SLM: a flat 256-byte array, zero-latency.  RTL: a direct-mapped 8-line
// write-through cache in front of a synchronous-read backing memory; read
// hits respond in the request cycle, misses take a 4-cycle penalty.  Values
// always agree (in-order scoreboard), timing never does — the comparator
// has to absorb a state-dependent latency distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.h"
#include "workload/workload.h"

namespace dfv::designs {

/// Zero-latency SLM: replays the trace against a flat array; returns the
/// response data stream (one entry per request: write echoes the data).
std::vector<std::uint8_t> memGolden(
    const std::vector<workload::MemRequest>& trace);

/// The cache RTL: req_valid/req_write/req_addr[8]/req_wdata[8] in,
/// req_ready/resp_valid/resp_data[8] out.
rtl::Module makeCacheRtl();

/// Drives the RTL through a request trace (issuing when req_ready).
struct MemRunResult {
  std::vector<std::uint8_t> responses;      ///< in request order
  std::vector<std::uint64_t> latencies;     ///< cycles from issue to resp
  std::uint64_t readHits = 0;
  std::uint64_t readMisses = 0;
  std::uint64_t cyclesRun = 0;
};
MemRunResult runCache(const std::vector<workload::MemRequest>& trace);

}  // namespace dfv::designs
