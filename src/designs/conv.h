// The 3x3 image-convolution design pair: the paper's §3.2 interface story.
//
// "The SLM of an image processing block may read in the entire image as a
// single array of pixels while the RTL reads it as a stream of pixels."
// Here the SLM is a whole-image function (parallel interface) and the RTL is
// a raster-order pixel stream with shift-register line buffers (serial
// interface); transactors bridge the two for co-simulation, and SEC runs at
// the window level where the interfaces coincide.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "rtl/netlist.h"
#include "slmc/ast.h"
#include "workload/workload.h"

namespace dfv::designs {

/// 3x3 kernel of small signed coefficients, row-major, plus a right-shift
/// normalizer.  Result per pixel: clamp((sum * ) >> shift, 0, 255).
struct ConvKernel {
  std::array<int, 9> k;
  unsigned shift;

  /// A mild sharpen kernel (sum 16, shift 4 -> unity gain).
  static ConvKernel sharpen() {
    return ConvKernel{{0, -2, 0, -2, 24, -2, 0, -2, 0}, 4};
  }
  /// Box blur (sum 16 with the center 8).
  static ConvKernel blur() {
    return ConvKernel{{1, 1, 1, 1, 8, 1, 1, 1, 1}, 4};
  }
};

/// Whole-image SLM (parallel interface): returns the interior
/// (width-2)x(height-2) result in raster order.  Bit-exact with the RTL.
std::vector<std::uint8_t> convGolden(const workload::Image& img,
                                     const ConvKernel& kernel);

/// Exact per-window arithmetic shared by all models (20-bit accumulate,
/// arithmetic shift, clamp to [0,255]).
std::uint8_t convWindow(const std::array<std::uint8_t, 9>& window,
                        const ConvKernel& kernel);

/// Streaming RTL: in_data[8]/in_valid -> out_data[8]/out_valid, raster scan
/// of a fixed `imageWidth`; emits interior pixels in raster order.
/// `imageWidth` must be >= 4 and <= 256.
rtl::Module makeConvRtl(unsigned imageWidth, const ConvKernel& kernel);

/// The window datapath alone (combinational): inputs p0..p8, output "pix".
/// This is the block SEC compares against the SLM-C window function.
rtl::Module makeConvWindowRtl(const ConvKernel& kernel);

/// The window function as a conditioned SLM-C model (params p0..p8), for
/// lint + elaboration + SEC.
slmc::Function makeConvWindowSlm(const ConvKernel& kernel);

}  // namespace dfv::designs
