#include "designs/fir.h"

#include "rtl/lower.h"

namespace dfv::designs {

std::vector<std::int32_t> firGoldenInt(const std::vector<std::int8_t>& x) {
  std::vector<std::int32_t> out;
  if (x.size() < kFirTaps) return out;
  out.reserve(x.size() - kFirTaps + 1);
  for (std::size_t k = kFirTaps - 1; k < x.size(); ++k) {
    std::int32_t acc = 0;  // plain int: never wraps for this filter
    for (unsigned i = 0; i < kFirTaps; ++i)
      acc += kFirCoeffs[i] * static_cast<std::int32_t>(x[k - i]);
    out.push_back(acc);
  }
  return out;
}

void FirKernel::reset() {
  for (auto& d : delay_) d = 0;
  seen_ = 0;
}

std::optional<bv::Int<kFirAccWidth>> FirKernel::push(std::int8_t sample) {
  using Acc = bv::Int<kFirAccWidth>;
  for (unsigned i = kFirTaps - 1; i > 0; --i) delay_[i] = delay_[i - 1];
  delay_[0] = sample;
  if (++seen_ < kFirTaps) return std::nullopt;
  Acc acc = 0;
  for (unsigned i = 0; i < kFirTaps; ++i) {
    const Acc s = static_cast<std::int64_t>(delay_[i]);
    const Acc coeff = kFirCoeffs[i];
    acc += s * coeff;  // wraps at kFirAccWidth — like the RTL wires
  }
  return acc;
}

std::vector<bv::Int<kFirAccWidth>> firGoldenBitAccurate(
    const std::vector<std::int8_t>& x) {
  // Untimed communication around the shared computational kernel.
  std::vector<bv::Int<kFirAccWidth>> out;
  FirKernel kernel;
  for (std::int8_t sample : x) {
    if (auto y = kernel.push(sample)) out.push_back(*y);
  }
  return out;
}

rtl::Module makeFirRtl(FirBug bug) {
  const bool narrowAccumulator = bug == FirBug::kNarrowAccumulator;
  const unsigned accW = narrowAccumulator ? kFirNarrowAccWidth : kFirAccWidth;
  rtl::Module m(narrowAccumulator ? "fir_narrow" : "fir");
  rtl::NetId in = m.addInput("in_data", 8);
  rtl::NetId valid = m.addInput("in_valid", 1);

  // Delay line: tap[0] is the incoming sample, tap[i>0] are registers.
  std::vector<rtl::NetId> taps(kFirTaps);
  taps[0] = in;
  for (unsigned i = 1; i < kFirTaps; ++i) {
    taps[i] = m.addDff("x" + std::to_string(i), 8, 0);
    m.connectDff(taps[i], taps[i - 1], valid);
  }
  // Valid shift chain: output meaningful once kFirTaps samples accepted.
  std::vector<rtl::NetId> vchain(kFirTaps);
  vchain[0] = valid;
  for (unsigned i = 1; i < kFirTaps; ++i) {
    vchain[i] = m.addDff("v" + std::to_string(i), 1, 0);
    m.connectDff(vchain[i], vchain[i - 1], valid);
  }

  // MAC tree at the (possibly narrowed) accumulator width.
  rtl::NetId acc = rtl::kNoNet;
  for (unsigned i = 0; i < kFirTaps; ++i) {
    if (bug == FirBug::kDroppedTap && i == kFirTaps - 1) continue;
    int c = kFirCoeffs[i];
    if (bug == FirBug::kWrongCoefficient && i == 2) c = -c;
    rtl::NetId sample = m.opSExt(taps[i], accW);
    rtl::NetId coeff = m.constant(bv::BitVector::fromInt(accW, c));
    rtl::NetId prod = m.opMul(sample, coeff);
    acc = (acc == rtl::kNoNet) ? prod : m.opAdd(acc, prod);
  }
  rtl::NetId out = narrowAccumulator ? m.opSExt(acc, kFirAccWidth) : acc;

  m.addOutput("out_data", out);
  m.addOutput("out_valid", m.opAnd(valid, vchain[kFirTaps - 1]));
  return m;
}

ir::TransitionSystem makeFirSlmTs(ir::Context& ctx) {
  ir::TransitionSystem ts(ctx, "fir_slm");
  ir::NodeRef in = ts.addInput("s.in", 8);
  std::vector<ir::NodeRef> taps(kFirTaps);
  taps[0] = in;
  for (unsigned i = 1; i < kFirTaps; ++i)
    taps[i] = ts.addState("s.x" + std::to_string(i), 8, 0);
  for (unsigned i = 1; i < kFirTaps; ++i)
    ts.setNext(taps[i], taps[i - 1]);
  ir::NodeRef acc = nullptr;
  for (unsigned i = 0; i < kFirTaps; ++i) {
    ir::NodeRef prod = ctx.mul(ctx.sext(taps[i], kFirAccWidth),
                               ctx.constantInt(kFirAccWidth, kFirCoeffs[i]));
    acc = acc == nullptr ? prod : ctx.add(acc, prod);
  }
  ts.addOutput("out", acc);
  // Warm-up counter: the SLM's abstraction of the RTL's valid chain, so
  // the SEC spec can cover the output handshake, not only the data (the
  // mutation study in bench_sec_ablation is what exposed the need).
  ir::NodeRef warm = ts.addState("s.warm", 3, 0);
  ir::NodeRef full = ctx.constantUint(3, kFirTaps - 1);
  ts.setNext(warm, ctx.mux(ctx.eq(warm, full), full,
                           ctx.add(warm, ctx.one(3))));
  ts.addOutput("valid", ctx.eq(warm, full));
  return ts;
}

FirSecSetup makeFirSecProblem(ir::Context& ctx, FirBug bug) {
  return makeFirSecProblemFor(ctx, makeFirRtl(bug));
}

FirSecSetup makeFirSecProblemFor(ir::Context& ctx,
                                 const rtl::Module& rtlModule) {
  FirSecSetup setup;
  setup.slm =
      std::make_unique<ir::TransitionSystem>(makeFirSlmTs(ctx));
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(rtlModule, ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(ctx, *setup.slm, 1,
                                                    *setup.rtl, 1);
  sec::SecProblem& p = *setup.problem;
  ir::NodeRef sample = p.declareTxnVar("sample", 8);
  p.bindInput(sec::Side::kSlm, "s.in", 0, sample);
  p.bindInput(sec::Side::kRtl, "r.in_data", 0, sample);
  p.bindInput(sec::Side::kRtl, "r.in_valid", 0, ctx.one(1));
  p.checkOutputs("out", 0, "out_data", 0);
  p.checkOutputs("valid", 0, "out_valid", 0);
  // Coupling invariants: the delay lines agree register-for-register, and
  // the SLM's warm-up counter abstracts the RTL's valid chain.
  ir::NodeRef warm = setup.slm->findState("s.warm")->current;
  for (unsigned i = 1; i < kFirTaps; ++i) {
    p.addCouplingInvariant(
        ctx.eq(setup.slm->findState("s.x" + std::to_string(i))->current,
               setup.rtl->findState("r.x" + std::to_string(i))->current));
    p.addCouplingInvariant(
        ctx.eq(setup.rtl->findState("r.v" + std::to_string(i))->current,
               ctx.uge(warm, ctx.constantUint(3, i))));
  }
  return setup;
}

}  // namespace dfv::designs
