#include "designs/macpipe.h"

#include <unordered_map>

#include "rtl/sim.h"

namespace dfv::designs {

std::uint16_t macGolden(const MacOp& op) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned>(op.a) * static_cast<unsigned>(op.b) + op.tag);
}

namespace {

/// Builds one lane: `stages` pipeline registers carrying valid/tag/data.
/// The datapath (a*b computed in stage 1, +tag at the end) is identical in
/// both lanes; only the depth differs.
void buildLane(rtl::Module& m, const std::string& prefix, unsigned stages,
               rtl::NetId enable, rtl::NetId inValid, rtl::NetId tag,
               rtl::NetId a, rtl::NetId b) {
  // Stage 1: multiply.
  rtl::NetId prod = m.opMul(m.opZExt(a, 16), m.opZExt(b, 16));
  rtl::NetId v = m.addDff(prefix + "v1", 1, 0);
  m.connectDff(v, inValid, enable);
  rtl::NetId t = m.addDff(prefix + "t1", 4, 0);
  m.connectDff(t, tag, enable);
  rtl::NetId d = m.addDff(prefix + "d1", 16, 0);
  m.connectDff(d, prod, enable);
  // Remaining stages: plain pipeline flops.
  for (unsigned s = 2; s <= stages; ++s) {
    rtl::NetId vn = m.addDff(prefix + "v" + std::to_string(s), 1, 0);
    m.connectDff(vn, v, enable);
    rtl::NetId tn = m.addDff(prefix + "t" + std::to_string(s), 4, 0);
    m.connectDff(tn, t, enable);
    rtl::NetId dn = m.addDff(prefix + "d" + std::to_string(s), 16, 0);
    m.connectDff(dn, d, enable);
    v = vn;
    t = tn;
    d = dn;
  }
  m.addOutput(prefix + "valid", v);
  m.addOutput(prefix + "tag", t);
  m.addOutput(prefix + "data", m.opAdd(d, m.opZExt(t, 16)));
}

}  // namespace

rtl::Module makeMacPipeRtl() {
  rtl::Module m("macpipe");
  rtl::NetId valid = m.addInput("in_valid", 1);
  rtl::NetId tag = m.addInput("in_tag", 4);
  rtl::NetId a = m.addInput("in_a", 8);
  rtl::NetId b = m.addInput("in_b", 8);
  rtl::NetId stall = m.addInput("stall", 1);
  rtl::NetId enable = m.opNot(stall);

  rtl::NetId laneSel = m.opExtract(tag, 0, 0);  // odd tag -> slow lane
  rtl::NetId fastValid = m.opAnd(valid, m.opNot(laneSel));
  rtl::NetId slowValid = m.opAnd(valid, laneSel);
  buildLane(m, "f_", /*stages=*/2, enable, fastValid, tag, a, b);
  buildLane(m, "s_", /*stages=*/4, enable, slowValid, tag, a, b);
  return m;
}

MacRunResult runMacPipe(const std::vector<MacOp>& ops,
                        const cosim::StallPolicy& stall,
                        std::uint64_t drainCycles) {
  rtl::Simulator sim(makeMacPipeRtl());
  MacRunResult result;
  result.latencies.assign(ops.size(), 0);
  std::unordered_map<std::uint8_t, std::vector<std::size_t>> issueByTag;
  std::unordered_map<std::uint8_t, std::vector<std::uint64_t>> issueCycle;

  std::size_t next = 0;
  std::uint64_t idle = drainCycles;
  std::uint64_t cycle = 0;
  while (next < ops.size() || idle > 0) {
    const bool stalled = stall(cycle);
    const bool feeding = !stalled && next < ops.size();
    if (feeding) {
      sim.setInputUint("in_valid", 1);
      sim.setInputUint("in_tag", ops[next].tag & 0xf);
      sim.setInputUint("in_a", ops[next].a);
      sim.setInputUint("in_b", ops[next].b);
      issueByTag[ops[next].tag & 0xf].push_back(next);
      issueCycle[ops[next].tag & 0xf].push_back(cycle);
      ++next;
    } else {
      sim.setInputUint("in_valid", 0);
      sim.setInputUint("in_tag", 0);
      sim.setInputUint("in_a", 0);
      sim.setInputUint("in_b", 0);
    }
    sim.setInputUint("stall", stalled ? 1 : 0);
    sim.evalCombinational();
    if (!stalled) {
      for (const char* lane : {"f_", "s_"}) {
        const std::string p(lane);
        if (sim.outputValue(p + "valid").isZero()) continue;
        MacRunResult::Completion c;
        c.cycle = cycle;
        c.tag = static_cast<std::uint8_t>(
            sim.outputValue(p + "tag").toUint64());
        c.data = static_cast<std::uint16_t>(
            sim.outputValue(p + "data").toUint64());
        c.fastLane = p == "f_";
        result.completions.push_back(c);
        // Completions per tag are FIFO within a lane (ops with one tag all
        // use one lane), so pop the oldest outstanding issue of this tag.
        auto& issued = issueByTag[c.tag];
        auto& cycles = issueCycle[c.tag];
        DFV_CHECK_MSG(!issued.empty(), "completion with no issue");
        result.latencies[issued.front()] = c.cycle - cycles.front();
        issued.erase(issued.begin());
        cycles.erase(cycles.begin());
      }
    }
    sim.clockEdge();
    if (next >= ops.size()) --idle;
    ++cycle;
  }
  result.cyclesRun = cycle;
  return result;
}

}  // namespace dfv::designs
