#include "designs/conv.h"

#include <algorithm>

namespace dfv::designs {

namespace {
/// Accumulator width: |sum| <= 255 * (|k| summed) < 255*48 < 2^14; 20 bits
/// leaves generous headroom and matches the RTL datapath.
constexpr unsigned kConvAccW = 20;
}  // namespace

std::uint8_t convWindow(const std::array<std::uint8_t, 9>& window,
                        const ConvKernel& kernel) {
  std::int32_t acc = 0;
  for (unsigned i = 0; i < 9; ++i)
    acc += kernel.k[i] * static_cast<std::int32_t>(window[i]);
  acc >>= kernel.shift;  // arithmetic shift (acc may be negative)
  return static_cast<std::uint8_t>(std::clamp(acc, 0, 255));
}

std::vector<std::uint8_t> convGolden(const workload::Image& img,
                                     const ConvKernel& kernel) {
  DFV_CHECK_MSG(img.width >= 3 && img.height >= 3, "image too small");
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(img.width - 2) * (img.height - 2));
  for (unsigned y = 1; y + 1 < img.height; ++y) {
    for (unsigned x = 1; x + 1 < img.width; ++x) {
      std::array<std::uint8_t, 9> window;
      for (unsigned wy = 0; wy < 3; ++wy)
        for (unsigned wx = 0; wx < 3; ++wx)
          window[wy * 3 + wx] = img.at(x - 1 + wx, y - 1 + wy);
      out.push_back(convWindow(window, kernel));
    }
  }
  return out;
}

namespace {

/// Emits the shared window datapath into `m`: 9 pixel nets -> result net.
/// Window layout: w[0..2] oldest row, w[6..8] newest row, matching
/// convWindow's row-major order.
rtl::NetId buildWindowDatapath(rtl::Module& m,
                               const std::vector<rtl::NetId>& window,
                               const ConvKernel& kernel) {
  rtl::NetId acc = rtl::kNoNet;
  for (unsigned i = 0; i < 9; ++i) {
    rtl::NetId px = m.opZExt(window[i], kConvAccW);
    rtl::NetId coeff =
        m.constant(bv::BitVector::fromInt(kConvAccW, kernel.k[i]));
    rtl::NetId prod = m.opMul(px, coeff);
    acc = acc == rtl::kNoNet ? prod : m.opAdd(acc, prod);
  }
  rtl::NetId shifted =
      m.opAShr(acc, m.constantUint(kConvAccW, kernel.shift));
  // clamp(acc, 0, 255)
  rtl::NetId zero = m.constantUint(kConvAccW, 0);
  rtl::NetId maxv = m.constantUint(kConvAccW, 255);
  rtl::NetId isNeg = m.opSLt(shifted, zero);
  rtl::NetId isBig = m.opSLt(maxv, shifted);
  rtl::NetId clamped = m.opMux(isNeg, zero, m.opMux(isBig, maxv, shifted));
  return m.opExtract(clamped, 7, 0);
}

}  // namespace

rtl::Module makeConvWindowRtl(const ConvKernel& kernel) {
  rtl::Module m("conv_window");
  std::vector<rtl::NetId> window;
  for (unsigned i = 0; i < 9; ++i)
    window.push_back(m.addInput("p" + std::to_string(i), 8));
  m.addOutput("pix", buildWindowDatapath(m, window, kernel));
  return m;
}

rtl::Module makeConvRtl(unsigned imageWidth, const ConvKernel& kernel) {
  DFV_CHECK_MSG(imageWidth >= 4 && imageWidth <= 256, "unsupported width");
  rtl::Module m("conv3x3");
  rtl::NetId in = m.addInput("in_data", 8);
  rtl::NetId valid = m.addInput("in_valid", 1);

  // One long shift chain covering two full rows plus three pixels; the 3x3
  // window is tapped at offsets {0,1,2, W,W+1,W+2, 2W,2W+1,2W+2} where
  // offset 0 is the incoming pixel (newest, bottom-right of the window).
  const unsigned chainLen = 2 * imageWidth + 2;
  std::vector<rtl::NetId> chain(chainLen + 1);
  chain[0] = in;
  for (unsigned i = 1; i <= chainLen; ++i) {
    chain[i] = m.addDff("lb" + std::to_string(i), 8, 0);
    m.connectDff(chain[i], chain[i - 1], valid);
  }
  // Window in convWindow's row-major order: oldest row first.
  std::vector<rtl::NetId> window = {
      chain[2 * imageWidth + 2], chain[2 * imageWidth + 1],
      chain[2 * imageWidth],     chain[imageWidth + 2],
      chain[imageWidth + 1],     chain[imageWidth],
      chain[2],                  chain[1],
      chain[0]};
  rtl::NetId pix = buildWindowDatapath(m, window, kernel);

  // Raster counters: current input coordinate (x, y).
  rtl::NetId x = m.addDff("x", 9, 0);
  rtl::NetId y = m.addDff("y", 9, 0);
  rtl::NetId lastCol =
      m.opEq(x, m.constantUint(9, imageWidth - 1));
  rtl::NetId xNext =
      m.opMux(lastCol, m.constantUint(9, 0),
              m.opAdd(x, m.constantUint(9, 1)));
  rtl::NetId yNext = m.opMux(lastCol, m.opAdd(y, m.constantUint(9, 1)), y);
  m.connectDff(x, xNext, valid);
  m.connectDff(y, yNext, valid);

  // The window is valid when the current pixel is at x>=2, y>=2.
  rtl::NetId xOk = m.opULe(m.constantUint(9, 2), x);
  rtl::NetId yOk = m.opULe(m.constantUint(9, 2), y);
  m.addOutput("out_data", pix);
  m.addOutput("out_valid", m.opAnd(valid, m.opAnd(xOk, yOk)));
  return m;
}

slmc::Function makeConvWindowSlm(const ConvKernel& kernel) {
  using namespace slmc;
  Function f;
  f.name = "conv_window";
  for (unsigned i = 0; i < 9; ++i)
    f.params.push_back(Param{"p" + std::to_string(i), 8, false});
  f.returnWidth = 8;
  f.returnSigned = false;
  Block body;
  body.push_back(declVar("acc", kConvAccW, true));
  for (unsigned i = 0; i < 9; ++i) {
    body.push_back(assign(
        "acc", binary(BinOp::kAdd, var("acc"),
                      binary(BinOp::kMul,
                             cast(var("p" + std::to_string(i)), kConvAccW,
                                  true),
                             constant(kConvAccW, kernel.k[i])))));
  }
  body.push_back(assign(
      "acc", binary(BinOp::kShr, var("acc"),
                    constantU(kConvAccW, kernel.shift))));
  body.push_back(ifElse(binary(BinOp::kLt, var("acc"), constant(kConvAccW, 0)),
                        {assign("acc", constant(kConvAccW, 0))}, {}));
  body.push_back(
      ifElse(binary(BinOp::kGt, var("acc"), constant(kConvAccW, 255)),
             {assign("acc", constant(kConvAccW, 255))}, {}));
  body.push_back(returnStmt(cast(var("acc"), 8, false)));
  f.body = std::move(body);
  return f;
}

}  // namespace dfv::designs
