#include "designs/wrapcnt.h"

#include "rtl/lower.h"

namespace dfv::designs {

ir::TransitionSystem makeWrapcntSlmTs(ir::Context& ctx) {
  ir::TransitionSystem ts(ctx, "wrapcnt_slm");
  const unsigned w = kWrapcntWidth;
  ir::NodeRef tick = ts.addInput("s.tick", 1);
  ir::NodeRef cnt = ts.addState("s.cnt", w, 0);
  ir::NodeRef maxv = ctx.constantUint(w, kWrapcntMax);
  // Defensive wrap: any count at or past the limit restarts the cycle.
  ir::NodeRef step = ctx.mux(ctx.ule(maxv, cnt), ctx.zero(w),
                             ctx.add(cnt, ctx.one(w)));
  ts.setNext(cnt, ctx.mux(tick, step, cnt));
  ts.addOutput("count", cnt);
  return ts;
}

rtl::Module makeWrapcntRtl() {
  const unsigned w = kWrapcntWidth;
  rtl::Module m("wrapcnt");
  rtl::NetId tick = m.addInput("tick", 1);
  rtl::NetId cnt = m.addDff("cnt", w, 0);
  // Synthesized wrap: an equality comparator against the terminal count.
  rtl::NetId step = m.opMux(m.opEq(cnt, m.constantUint(w, kWrapcntMax)),
                            m.constantUint(w, 0),
                            m.opAdd(cnt, m.constantUint(w, 1)));
  m.connectDff(cnt, m.opMux(tick, step, cnt));
  m.addOutput("count", cnt);
  return m;
}

WrapcntSecSetup makeWrapcntSecProblem(ir::Context& ctx) {
  WrapcntSecSetup setup;
  setup.slm = std::make_unique<ir::TransitionSystem>(makeWrapcntSlmTs(ctx));
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(makeWrapcntRtl(), ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(
      ctx, *setup.slm, 1, *setup.rtl, 1);
  sec::SecProblem& p = *setup.problem;
  ir::NodeRef tick = p.declareTxnVar("tick", 1);
  p.bindInput(sec::Side::kSlm, "s.tick", 0, tick);
  p.bindInput(sec::Side::kRtl, "r.tick", 0, tick);
  p.checkOutputs("count", 0, "count", 0);
  p.addCouplingInvariant(ctx.eq(setup.slm->findState("s.cnt")->current,
                                setup.rtl->findState("r.cnt")->current));
  return setup;
}

}  // namespace dfv::designs
