#include "designs/fpadd.h"

namespace dfv::designs {

FpAddSecSetup makeFpAddSecProblem(ir::Context& ctx, fp::Format fmt,
                                  bool constrainToSafeBand) {
  const unsigned w = fmt.width();
  FpAddSecSetup setup;
  setup.slm = std::make_unique<ir::TransitionSystem>(ctx, "fp_slm");
  {
    ir::NodeRef a = setup.slm->addInput("s.a", w);
    ir::NodeRef b = setup.slm->addInput("s.b", w);
    setup.slm->addOutput("sum", fp::buildIeeeAdder(ctx, fmt, a, b));
  }
  setup.rtl = std::make_unique<ir::TransitionSystem>(ctx, "fp_rtl");
  {
    ir::NodeRef a = setup.rtl->addInput("r.a", w);
    ir::NodeRef b = setup.rtl->addInput("r.b", w);
    setup.rtl->addOutput("sum", fp::buildHwAdder(ctx, fmt, a, b));
  }
  setup.problem =
      std::make_unique<sec::SecProblem>(ctx, *setup.slm, 1, *setup.rtl, 1);
  sec::SecProblem& p = *setup.problem;
  ir::NodeRef va = p.declareTxnVar("fa", w);
  ir::NodeRef vb = p.declareTxnVar("fb", w);
  p.bindInput(sec::Side::kSlm, "s.a", 0, va);
  p.bindInput(sec::Side::kSlm, "s.b", 0, vb);
  p.bindInput(sec::Side::kRtl, "r.a", 0, va);
  p.bindInput(sec::Side::kRtl, "r.b", 0, vb);
  p.checkOutputs("sum", 0, "sum", 0);
  if (constrainToSafeBand) {
    const fp::SafeBand band = fp::safeExponentBand(fmt);
    p.addConstraint(
        fp::buildExponentBandConstraint(ctx, fmt, va, band.lo, band.hi));
    p.addConstraint(
        fp::buildExponentBandConstraint(ctx, fmt, vb, band.lo, band.hi));
  }
  return setup;
}

}  // namespace dfv::designs
