// The wrapcnt design pair: a modulo-(N+1) tick counter whose two sides
// wrap with different comparison shapes.
//
// The SLM wraps with `count >= N` (defensive system-level style), the RTL
// with `count == N` (the synthesized comparator).  Over reachable states
// the two are identical — the counter never exceeds N — but from an
// arbitrary symbolic start state they diverge (count = N+2 holds on the
// RTL side and wraps on the SLM side), so plain k-induction returns SAT
// and SEC stays bounded.  The abstract interpreter proves count ∈ [0, N]
// on both sides (N is harvested as a widening threshold, so the interval
// converges exactly), and dfv::inv certifies ule(count, N) as inductive;
// with that fact in the induction hypothesis the comparison shapes agree
// and the induction closes.  This is the calibrated fixture for
// SecOptions::invariants: bounded with strengthening off, proven with it
// on (asserted in tests/sec_test.cpp and measured in bench_sec_ablation's
// inv_matrix).
#pragma once

#include <memory>

#include "ir/transition_system.h"
#include "rtl/netlist.h"
#include "sec/transaction.h"

namespace dfv::designs {

/// Counter width and wrap point: counts 0..kWrapcntMax then wraps to 0.
/// kWrapcntMax < 2^4 also gives the known-bits domain four provably-zero
/// top bits, a second certifiable candidate.
inline constexpr unsigned kWrapcntWidth = 8;
inline constexpr unsigned kWrapcntMax = 10;

/// SLM as a transition system: input "s.tick"[1]; state "s.cnt"[8] wraps
/// on `cnt >= kWrapcntMax`; output "count" exposes the counter.
ir::TransitionSystem makeWrapcntSlmTs(ir::Context& ctx);

/// RTL: port tick[1]; the register wraps on `cnt == kWrapcntMax`; output
/// "count" exposes the register.
rtl::Module makeWrapcntRtl();

/// Complete SEC problem: 1-cycle SLM vs 1-cycle RTL, shared "tick"
/// transaction variable, counter equality coupling invariant, "count"
/// checked at cycle 0.
struct WrapcntSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};
WrapcntSecSetup makeWrapcntSecProblem(ir::Context& ctx);

}  // namespace dfv::designs
