// The floating-point adder design pair (§3.1.2).
//
// SLM side: the full-IEEE adder circuit (what a C model using `float`
// computes).  RTL side: the simplified hardware adder (flush-to-zero, no
// NaN/Inf, clamp).  Unconstrained SEC finds the corner-case divergence;
// constraining both operands to the safe exponent band proves equivalence —
// the exact technique §3.1.2 recommends.
#pragma once

#include <memory>

#include "fp/circuits.h"
#include "ir/transition_system.h"
#include "sec/transaction.h"

namespace dfv::designs {

struct FpAddSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};

/// Builds the SEC problem for the given format.  When `constrainToSafeBand`
/// both operands are constrained to fp::safeExponentBand(fmt).
FpAddSecSetup makeFpAddSecProblem(ir::Context& ctx, fp::Format fmt,
                                  bool constrainToSafeBand);

}  // namespace dfv::designs
