// The dual-lane MAC pipeline: the paper's Fig 2 / §3.2 timing story.
//
// "RTL models often have variability in input to output latency due to ...
// stall conditions ... Sometimes the order in which the RTL produces
// outputs may be different than the order in which the SLM produces the
// corresponding outputs."  This block makes both effects concrete:
//
//   * operations with an even tag take the fast lane (2 pipeline stages),
//     odd tags take the slow lane (4 stages) — completion order differs
//     from issue order whenever a fast op is issued <2 cycles after a slow
//     one;
//   * an external stall input freezes both lanes, stretching latency.
//
// The untimed SLM produces results in issue order with zero latency, so the
// cosim comparator must be the tag-matched out-of-order scoreboard.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cosim/scoreboard.h"
#include "cosim/wrapped_rtl.h"
#include "rtl/netlist.h"

namespace dfv::designs {

/// One MAC operation.
struct MacOp {
  std::uint8_t tag;  ///< 4-bit; LSB selects the lane
  std::uint8_t a;
  std::uint8_t b;
};

/// The function both lanes implement: a*b + tag (16-bit).
std::uint16_t macGolden(const MacOp& op);

/// RTL: inputs in_valid, in_tag[4], in_a[8], in_b[8], stall; two output
/// ports (fast lane: f_valid/f_tag/f_data; slow lane: s_valid/s_tag/s_data).
rtl::Module makeMacPipeRtl();

/// Result of driving the pipe with a stall policy.
struct MacRunResult {
  /// Completion records in the order the RTL produced them.
  struct Completion {
    std::uint64_t cycle;
    std::uint8_t tag;
    std::uint16_t data;
    bool fastLane;
  };
  std::vector<Completion> completions;
  std::uint64_t cyclesRun = 0;
  /// Per-op latency (completion cycle - issue cycle), indexed by issue
  /// order.
  std::vector<std::uint64_t> latencies;
};

/// Drives the RTL with one op per un-stalled cycle and collects both output
/// ports.  Deterministic in the stall policy.
MacRunResult runMacPipe(const std::vector<MacOp>& ops,
                        const cosim::StallPolicy& stall,
                        std::uint64_t drainCycles = 32);

}  // namespace dfv::designs
