// The FIR filter design pair: signal-processing block with SLM models at
// three abstraction levels plus streaming RTL.
//
// This design carries the paper's §3.1.1 story: the architecture-phase C
// model computes in plain `int` (32-bit everywhere), the RTL computes in
// sized bit-vectors.  With a correctly sized accumulator the two agree; the
// classic RTL bug — an accumulator narrowed to save area — wraps exactly
// where the int model silently doesn't (Fig 1's masked-overflow mechanism).
// Both co-simulation and SEC must find that bug; the bit-accurate SLM
// (written with bv::Int, the sc_int discipline) matches the RTL by
// construction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bitvec/hdl_int.h"
#include "ir/transition_system.h"
#include "rtl/netlist.h"
#include "sec/transaction.h"

namespace dfv::designs {

/// Tap count and the fixed symmetric low-pass coefficients (8-bit signed).
inline constexpr unsigned kFirTaps = 8;
inline constexpr int kFirCoeffs[kFirTaps] = {4, -3, 10, 21, 21, 10, -3, 4};
/// Full-precision accumulator width: |sum| <= 127 * 76 < 2^14.
inline constexpr unsigned kFirAccWidth = 18;
/// The buggy narrowed accumulator width (wraps on loud input).
inline constexpr unsigned kFirNarrowAccWidth = 12;

/// Architecture-phase C model: plain int arithmetic (width-oblivious).
/// Output k corresponds to input window ending at sample k (k >= taps-1).
std::vector<std::int32_t> firGoldenInt(const std::vector<std::int8_t>& x);

/// The computational kernel shared by every functionally accurate FIR model
/// (§4.4: keep computation orthogonal to communication so the kernel is
/// reused across abstraction levels).  A bit-accurate delay-line stepper:
/// the untimed golden model calls it in a loop; the kernel-based SLM module
/// calls it once per clock edge.
class FirKernel {
 public:
  /// Pushes one sample; returns the filter output once the window is full.
  std::optional<bv::Int<kFirAccWidth>> push(std::int8_t sample);
  void reset();

 private:
  std::int8_t delay_[kFirTaps] = {};
  unsigned seen_ = 0;
};

/// Bit-accurate SLM: same function computed with sized HdlInt datatypes
/// exactly as the (correct) RTL computes it.
std::vector<bv::Int<kFirAccWidth>> firGoldenBitAccurate(
    const std::vector<std::int8_t>& x);

/// Injectable RTL bugs (the CLM-SECFIND experiment's bug set).
enum class FirBug {
  kNone,
  kNarrowAccumulator,  ///< accumulator narrowed to 12 bits: wraps when loud
  kWrongCoefficient,   ///< tap 2's coefficient sign flipped
  kDroppedTap,         ///< the oldest tap is left out of the sum
};

/// Streaming RTL: ports in_data[8]/in_valid -> out_data[18]/out_valid.
/// One output per accepted input once the window is full (latency
/// kFirTaps-1 accepted samples).
rtl::Module makeFirRtl(FirBug bug);
inline rtl::Module makeFirRtl(bool narrowAccumulator = false) {
  return makeFirRtl(narrowAccumulator ? FirBug::kNarrowAccumulator
                                      : FirBug::kNone);
}

/// The verification SLM as a transition system: the bit-accurate model with
/// the RTL's delay-line timing detail added (§1: verification models are
/// functionally accurate models plus timing detail).  Input "s.in"[8];
/// output "out"[18].
ir::TransitionSystem makeFirSlmTs(ir::Context& ctx);

/// Builds the complete SEC problem (SLM vs lowered RTL, one sample per
/// transaction, delay-line coupling invariants).  The RTL side TS is
/// allocated in `ctx` and owned by the returned holder.
struct FirSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};
FirSecSetup makeFirSecProblem(ir::Context& ctx, FirBug bug);

/// Same SEC problem over an arbitrary FIR-shaped RTL module (same ports and
/// register names as makeFirRtl) — lets mutation studies and the DRC bench
/// drive the standard transaction map over edited netlists.
FirSecSetup makeFirSecProblemFor(ir::Context& ctx,
                                 const rtl::Module& rtlModule);
inline FirSecSetup makeFirSecProblem(ir::Context& ctx,
                                     bool narrowAccumulator) {
  return makeFirSecProblem(ctx, narrowAccumulator
                                    ? FirBug::kNarrowAccumulator
                                    : FirBug::kNone);
}

}  // namespace dfv::designs
