// The GCD design: the §4.3 model-conditioning showcase.
//
// One algorithm, three forms:
//   * a conditioned SLM-C model — static loop bound with a conditional
//     exit, statically sized storage (lints clean, elaborates);
//   * an unconditioned SLM-C model — data-dependent loop bound and a
//     dynamically sized scratch buffer (runs fine, cannot be analyzed);
//   * a multi-cycle RTL FSM — start/load then one Euclid step per cycle.
// SEC proves the elaborated conditioned model equivalent to the FSM over a
// fixed transaction window, which is exactly the §4.3 payoff: following the
// guidelines is what makes the formal flow possible at all.
#pragma once

#include <memory>

#include "ir/transition_system.h"
#include "rtl/netlist.h"
#include "sec/transaction.h"
#include "slmc/ast.h"

namespace dfv::designs {

/// Worst-case Euclid iterations for 8-bit operands (Fibonacci bound).
inline constexpr unsigned kGcdMaxIterations = 14;
/// RTL transaction window: load + iterations + result sample.
inline constexpr unsigned kGcdRtlCycles = kGcdMaxIterations + 2;

/// gcd(a, b) with a static loop bound + conditional exit (conditioned).
slmc::Function makeGcdConditioned();

/// The same algorithm written the "software way": data-dependent bound and
/// dynamic allocation (runnable, not analyzable).
slmc::Function makeGcdUnconditioned();

/// gcd(a, b) with a static bound and a breakIf exit instead of a guarded
/// body.  Lints clean and elaborates — but the accumulated break flags
/// produce multi-condition guards around each divider that never match the
/// FSM's single y==0 mux tests, so structural merging fails and the
/// induction must reason about 14 chained dividers (the DRC's
/// sec-guard-accumulation rule exists to catch exactly this shape).
slmc::Function makeGcdBreakIf();

/// RTL FSM: inputs start/a[8]/b[8]; on start loads operands, then performs
/// one Euclid step (x,y) <- (y, x mod y) per cycle while y != 0; outputs
/// "out"[8] (current x) and "done"[1] (y == 0).
rtl::Module makeGcdRtl();

/// Complete SEC problem: elaborated conditioned SLM (1 step/txn) vs the
/// RTL FSM (kGcdRtlCycles cycles/txn, start pulsed on cycle 0).
struct GcdSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};
GcdSecSetup makeGcdSecProblem(ir::Context& ctx);

/// The same SEC problem built from the breakIf-accumulation model instead
/// of the conditioned one.  Same transaction map, same RTL — only the SLM
/// shape differs; bench_drc uses the pair to confirm the DRC's
/// structural-merge prediction against measured induction behaviour.
GcdSecSetup makeGcdBreakIfSecProblem(ir::Context& ctx);

}  // namespace dfv::designs
