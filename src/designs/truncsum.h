// The truncsum design pair: a saturating sample accumulator whose buggy RTL
// narrows the datapath below the clamp's range — the §3.1.1 width-hazard
// story told at the value-range level.
//
// The SLM sums four 8-bit samples into a 16-bit accumulator, clamping at
// kTruncsumCap after every addition.  The good RTL carries an 11-bit
// accumulator — wide enough for cap + sample, so the two folds agree at
// every step.  The buggy RTL truncates the clamped value to 8 bits before
// registering and driving the output: bits the abstract interpreter can
// prove live (the clamp allows values up to 1000, ten bits) are dropped.
// dfv::drc flags the pair *statically* — lossy-truncation on the extract,
// sec-output-range-mismatch on the checked outputs (reachable hulls of 10
// vs 8 bits) — and SEC produces the concrete counterexample, e.g. two loud
// samples whose sum exceeds 255.
#pragma once

#include <memory>

#include "ir/transition_system.h"
#include "rtl/netlist.h"
#include "sec/transaction.h"

namespace dfv::designs {

/// Samples per transaction (the RTL transaction window, one per cycle).
inline constexpr unsigned kTruncsumSamples = 4;
/// Saturation cap applied after every accumulation step.
inline constexpr unsigned kTruncsumCap = 1000;
/// Good RTL accumulator width: cap + one sample = 1255 < 2^11.
inline constexpr unsigned kTruncsumAccWidth = 11;
/// Buggy RTL datapath width: the truncation drops bits [10:8] of the clamp.
inline constexpr unsigned kTruncsumNarrowWidth = 8;
/// Output port width on both sides.
inline constexpr unsigned kTruncsumOutWidth = 16;

/// SLM as a transition system: stateless 1-step fold of the four sample
/// inputs "s.s0".."s.s3"[8] at 16 bits, clamped at kTruncsumCap after each
/// addition; output "sum"[16].
ir::TransitionSystem makeTruncsumSlmTs(ir::Context& ctx);

/// RTL: ports start/sample[8] -> sum[16].  On start loads the sample, else
/// accumulates with the clamp; `narrow` truncates the clamped value to
/// kTruncsumNarrowWidth bits before the register and the output (the bug).
rtl::Module makeTruncsumRtl(bool narrow);

/// Complete SEC problem: 1-step SLM vs kTruncsumSamples-cycle RTL, the
/// output compared after the last sample.  `narrow` selects the buggy RTL.
struct TruncsumSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};
TruncsumSecSetup makeTruncsumSecProblem(ir::Context& ctx, bool narrow = false);

}  // namespace dfv::designs
