#include "designs/gcd.h"

#include "rtl/lower.h"
#include "slmc/elaborate.h"

namespace dfv::designs {

using namespace slmc;

slmc::Function makeGcdConditioned() {
  // Static bound with a guarded body: each unrolled iteration elaborates to
  // the same mux-and-divider structure as one FSM cycle, so the SEC miter
  // collapses structurally.  (A breakIf-based conditional exit is equally
  // lint-clean and interpretable — see designs_test's findfirst SEC — but
  // accumulating break flags elaborate to guards the solver must prove
  // equal to the FSM's y==0 tests across 14 chained dividers, which is the
  // kind of structural divergence §4.1 warns grows expensive.)
  Function f;
  f.name = "gcd";
  f.params = {{"a", 8, false}, {"b", 8, false}};
  f.returnWidth = 8;
  f.returnSigned = false;
  Block step;
  step.push_back(assign("t", binary(BinOp::kMod, var("x"), var("y"))));
  step.push_back(assign("x", var("y")));
  step.push_back(assign("y", var("t")));
  Block loop;
  loop.push_back(
      ifElse(binary(BinOp::kNe, var("y"), constantU(8, 0)), step, {}));
  f.body = {
      declVar("x", 8, false), assign("x", var("a")),
      declVar("y", 8, false), assign("y", var("b")),
      declVar("t", 8, false),
      forLoop("i", constantU(32, kGcdMaxIterations), loop),
      returnStmt(var("x")),
  };
  return f;
}

slmc::Function makeGcdUnconditioned() {
  Function f;
  f.name = "gcd_sw";
  f.params = {{"a", 8, false}, {"b", 8, false}};
  f.returnWidth = 8;
  f.returnSigned = false;
  Block loop;
  loop.push_back(breakIf(binary(BinOp::kEq, var("y"), constantU(8, 0))));
  loop.push_back(assign("t", binary(BinOp::kMod, var("x"), var("y"))));
  loop.push_back(assign("x", var("y")));
  loop.push_back(assign("y", var("t")));
  f.body = {
      declVar("x", 8, false), assign("x", var("a")),
      declVar("y", 8, false), assign("y", var("b")),
      declVar("t", 8, false),
      // malloc(a+1) — size depends on a runtime value
      declArray("scratch", 8, false,
                cast(binary(BinOp::kAdd, var("a"), constantU(8, 1)), 32,
                     false)),
      // while (y) — trip count depends on the data
      forLoop("i", cast(var("b"), 32, false), loop),
      returnStmt(var("x")),
  };
  return f;
}

slmc::Function makeGcdBreakIf() {
  // Identical algorithm and static bound, but the loop exits through
  // breakIf and leaves the body unguarded.  Every conditioning rule is
  // satisfied, yet each unrolled divider ends up guarded by the
  // accumulated not-yet-broken flag — an or-chain over i+1 comparisons —
  // instead of the single y != 0 test the FSM muxes on.
  Function f;
  f.name = "gcd_break";
  f.params = {{"a", 8, false}, {"b", 8, false}};
  f.returnWidth = 8;
  f.returnSigned = false;
  Block loop;
  loop.push_back(breakIf(binary(BinOp::kEq, var("y"), constantU(8, 0))));
  loop.push_back(assign("t", binary(BinOp::kMod, var("x"), var("y"))));
  loop.push_back(assign("x", var("y")));
  loop.push_back(assign("y", var("t")));
  f.body = {
      declVar("x", 8, false), assign("x", var("a")),
      declVar("y", 8, false), assign("y", var("b")),
      declVar("t", 8, false),
      forLoop("i", constantU(32, kGcdMaxIterations), loop),
      returnStmt(var("x")),
  };
  return f;
}

rtl::Module makeGcdRtl() {
  rtl::Module m("gcd_fsm");
  rtl::NetId start = m.addInput("start", 1);
  rtl::NetId a = m.addInput("a", 8);
  rtl::NetId b = m.addInput("b", 8);
  rtl::NetId x = m.addDff("x", 8, 0);
  rtl::NetId y = m.addDff("y", 8, 0);
  rtl::NetId yIsZero = m.opEq(y, m.constantUint(8, 0));
  // One Euclid step per cycle: (x, y) <- (y, x mod y) while y != 0.
  rtl::NetId xStep = m.opMux(yIsZero, x, y);
  rtl::NetId yStep = m.opMux(yIsZero, y, m.opURem(x, y));
  m.connectDff(x, m.opMux(start, a, xStep));
  m.connectDff(y, m.opMux(start, b, yStep));
  m.addOutput("out", x);
  m.addOutput("done", yIsZero);
  return m;
}

namespace {

GcdSecSetup makeSecFor(const slmc::Function& slmModel, ir::Context& ctx) {
  GcdSecSetup setup;
  Elaboration e = elaborate(slmModel, ctx, "s.");
  DFV_CHECK_MSG(e.ok, "gcd model failed to elaborate");
  setup.slm = std::move(e.ts);
  setup.rtl = std::make_unique<ir::TransitionSystem>(
      rtl::lowerToTransitionSystem(makeGcdRtl(), ctx, "r."));
  setup.problem = std::make_unique<sec::SecProblem>(
      ctx, *setup.slm, 1, *setup.rtl, kGcdRtlCycles);
  sec::SecProblem& p = *setup.problem;
  ir::NodeRef va = p.declareTxnVar("a", 8);
  ir::NodeRef vb = p.declareTxnVar("b", 8);
  p.bindInput(sec::Side::kSlm, "s.a", 0, va);
  p.bindInput(sec::Side::kSlm, "s.b", 0, vb);
  for (unsigned c = 0; c < kGcdRtlCycles; ++c) {
    p.bindInput(sec::Side::kRtl, "r.start", c,
                ctx.constantUint(1, c == 0 ? 1 : 0));
    p.bindInput(sec::Side::kRtl, "r.a", c, va);
    p.bindInput(sec::Side::kRtl, "r.b", c, vb);
  }
  // SLM result vs RTL x register after the full iteration window.
  p.checkOutputs("ret", 0, "out", kGcdRtlCycles - 1);
  return setup;
}

}  // namespace

GcdSecSetup makeGcdSecProblem(ir::Context& ctx) {
  return makeSecFor(makeGcdConditioned(), ctx);
}

GcdSecSetup makeGcdBreakIfSecProblem(ir::Context& ctx) {
  return makeSecFor(makeGcdBreakIf(), ctx);
}

}  // namespace dfv::designs
