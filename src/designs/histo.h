// The histo design pair: a bank of saturating histogram bins.
//
// Four 16-bit bins count 2-bit bin indices, saturating at kHistoCap.  The
// SLM applies one transaction's four samples in a single combinational
// fold; the RTL applies one sample per cycle.  Per-bin equality coupling
// invariants make the induction structural (the CLAUDE.md aliasing
// invariant), and the clamp gives the abstract interpreter real facts to
// prove: every bin stays in [0, kHistoCap], so six of each counter's
// sixteen bits are known zero and every increment narrows — the design
// exists to measure that SEC simplification payoff (bench_sec_ablation's
// absint column).
#pragma once

#include <memory>

#include "ir/transition_system.h"
#include "rtl/netlist.h"
#include "sec/transaction.h"

namespace dfv::designs {

/// Number of bins (indices are kHistoIdxWidth-bit).
inline constexpr unsigned kHistoBins = 4;
inline constexpr unsigned kHistoIdxWidth = 2;
/// Counter width and the saturation cap (1000 < 2^10, so the top six of
/// each 16-bit counter are provably zero).
inline constexpr unsigned kHistoCountWidth = 16;
inline constexpr unsigned kHistoCap = 1000;
/// Samples per transaction (RTL cycles per transaction).
inline constexpr unsigned kHistoSamples = 4;

/// SLM as a transition system: inputs "s.b0".."s.b3"[2]; states
/// "s.bin0".."s.bin3"[16] updated by a 1-step fold of all four samples;
/// outputs "count0".."count3" expose the current bin values.
ir::TransitionSystem makeHistoSlmTs(ir::Context& ctx);

/// RTL: port b[2]; one saturating increment per cycle; outputs
/// count0..count3 expose the bin registers.
rtl::Module makeHistoRtl();

/// Complete SEC problem: 1-step SLM vs kHistoSamples-cycle RTL with per-bin
/// equality coupling invariants; all four counts checked at cycle 0.
struct HistoSecSetup {
  std::unique_ptr<ir::TransitionSystem> slm;
  std::unique_ptr<ir::TransitionSystem> rtl;
  std::unique_ptr<sec::SecProblem> problem;
};
HistoSecSetup makeHistoSecProblem(ir::Context& ctx);

}  // namespace dfv::designs
