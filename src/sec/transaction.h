// Transaction specifications for sequential equivalence checking.
//
// Following the paper's §2: "sequential equivalence checking requires the
// specification of how the inputs map between the SLM and RTL and
// specification of when to check the outputs. Typically, this requires
// specifying a repeating computational transaction in the SLM and the
// corresponding transaction in the RTL model."
//
// A SecProblem therefore carries:
//   * the two transition systems (the SLM side and the RTL side),
//   * the length of one transaction on each side, in steps — an untimed SLM
//     is typically 1 step per transaction while the RTL takes N cycles,
//   * *transaction variables*: the abstract stimulus of one transaction,
//     shared by both sides,
//   * input mappings: for each (side, input, cycle-in-transaction), an
//     expression over the transaction variables.  Unmapped input/cycle pairs
//     are left free (universally quantified fresh values every cycle),
//   * output sample points: pairs of (SLM output at cycle i) == (RTL output
//     at cycle j) — this is "when to check the outputs",
//   * input constraints over the transaction variables (§3.1.2: constrain
//     the input space so that intended differences do not show up).
#pragma once

#include <string>
#include <vector>

#include "ir/transition_system.h"

namespace dfv::sec {

/// Identifies one side of the equivalence check.
enum class Side { kSlm, kRtl };

/// Drives `input` of one side at cycle `cycle` (within each transaction)
/// with `value`, an expression over the problem's transaction variables.
struct InputBinding {
  Side side;
  ir::NodeRef input = nullptr;   ///< an input leaf of that side's TS
  unsigned cycle = 0;            ///< 0 .. cyclesPerTransaction-1
  ir::NodeRef value = nullptr;   ///< expr over transaction variables
};

/// Requires slmOutput sampled at slmCycle to equal rtlOutput at rtlCycle
/// (cycles within each transaction window).
struct OutputCheck {
  std::string slmOutput;
  unsigned slmCycle = 0;
  std::string rtlOutput;
  unsigned rtlCycle = 0;
};

/// A complete SLM-vs-RTL equivalence problem over a shared ir::Context.
class SecProblem {
 public:
  SecProblem(ir::Context& ctx, const ir::TransitionSystem& slm,
             unsigned slmCyclesPerTxn, const ir::TransitionSystem& rtl,
             unsigned rtlCyclesPerTxn)
      : ctx_(&ctx),
        slm_(&slm),
        rtl_(&rtl),
        slmCycles_(slmCyclesPerTxn),
        rtlCycles_(rtlCyclesPerTxn) {
    DFV_CHECK_MSG(slmCyclesPerTxn >= 1 && rtlCyclesPerTxn >= 1,
                  "transactions must span at least one step");
  }

  ir::Context& ctx() const { return *ctx_; }
  const ir::TransitionSystem& side(Side s) const {
    return s == Side::kSlm ? *slm_ : *rtl_;
  }
  unsigned cycles(Side s) const {
    return s == Side::kSlm ? slmCycles_ : rtlCycles_;
  }

  /// Declares a fresh transaction variable (one abstract stimulus word per
  /// transaction).  Returns its leaf, usable in bindings and constraints.
  ir::NodeRef declareTxnVar(const std::string& name, unsigned width) {
    ir::NodeRef v = ctx_->input("txn." + name, width);
    txnVars_.push_back(v);
    return v;
  }

  /// Binds `inputName` of `side` at in-transaction `cycle` to `value`.
  void bindInput(Side side, const std::string& inputName, unsigned cycle,
                 ir::NodeRef value) {
    const ir::TransitionSystem& ts = this->side(side);
    ir::NodeRef input = ts.findInput(inputName);
    DFV_CHECK_MSG(input != nullptr, "no input '" << inputName << "' on side");
    DFV_CHECK_MSG(cycle < cycles(side), "cycle " << cycle
                                                 << " outside transaction");
    DFV_CHECK_MSG(value->type() == input->type(),
                  "binding sort mismatch for '" << inputName << "'");
    bindings_.push_back(InputBinding{side, input, cycle, value});
  }

  /// Binds `inputName` at every cycle of the transaction to `value`.
  void bindInputAllCycles(Side side, const std::string& inputName,
                          ir::NodeRef value) {
    for (unsigned c = 0; c < cycles(side); ++c)
      bindInput(side, inputName, c, value);
  }

  void checkOutputs(const std::string& slmOutput, unsigned slmCycle,
                    const std::string& rtlOutput, unsigned rtlCycle) {
    const auto* so = slm_->findOutput(slmOutput);
    const auto* ro = rtl_->findOutput(rtlOutput);
    DFV_CHECK_MSG(so != nullptr, "no SLM output '" << slmOutput << "'");
    DFV_CHECK_MSG(ro != nullptr, "no RTL output '" << rtlOutput << "'");
    DFV_CHECK_MSG(so->expr->width() == ro->expr->width(),
                  "output width mismatch: " << slmOutput << " vs "
                                            << rtlOutput);
    DFV_CHECK_MSG(slmCycle < slmCycles_ && rtlCycle < rtlCycles_,
                  "output sample point outside transaction");
    checks_.push_back(OutputCheck{slmOutput, slmCycle, rtlOutput, rtlCycle});
  }

  /// Adds an input-space constraint (1-bit expr over transaction variables),
  /// assumed to hold for every transaction.
  void addConstraint(ir::NodeRef c) {
    DFV_CHECK_MSG(c->width() == 1 && !c->type().isArray(),
                  "constraint must be 1 bit");
    constraints_.push_back(c);
  }

  /// Adds a coupling invariant: a 1-bit expression over the *state leaves*
  /// of both sides, used by the inductive step (assumed at transaction
  /// start, proven at transaction end, checked on the reset states).
  void addCouplingInvariant(ir::NodeRef inv) {
    DFV_CHECK_MSG(inv->width() == 1 && !inv->type().isArray(),
                  "invariant must be 1 bit");
    couplingInvariants_.push_back(inv);
  }

  const std::vector<ir::NodeRef>& txnVars() const { return txnVars_; }
  const std::vector<InputBinding>& bindings() const { return bindings_; }
  const std::vector<OutputCheck>& checks() const { return checks_; }
  const std::vector<ir::NodeRef>& constraints() const { return constraints_; }
  const std::vector<ir::NodeRef>& couplingInvariants() const {
    return couplingInvariants_;
  }

 private:
  ir::Context* ctx_;
  const ir::TransitionSystem* slm_;
  const ir::TransitionSystem* rtl_;
  unsigned slmCycles_;
  unsigned rtlCycles_;
  std::vector<ir::NodeRef> txnVars_;
  std::vector<InputBinding> bindings_;
  std::vector<OutputCheck> checks_;
  std::vector<ir::NodeRef> constraints_;
  std::vector<ir::NodeRef> couplingInvariants_;
};

}  // namespace dfv::sec
