#include "sec/engine.h"

#include <chrono>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "absint/simplify.h"
#include "fault/fault.h"
#include "ir/eval.h"

namespace dfv::sec {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::kProvenEquivalent: return "proven-equivalent";
    case Verdict::kBoundedEquivalent: return "bounded-equivalent";
    case Verdict::kNotEquivalent: return "NOT-equivalent";
    case Verdict::kInconclusive: return "inconclusive";
  }
  DFV_UNREACHABLE("bad verdict");
}

std::string Counterexample::summary() const {
  std::ostringstream os;
  os << "transaction " << failingTransaction << ": SLM." << check.slmOutput
     << "@" << check.slmCycle << " = " << slmValue.toString(16) << " vs RTL."
     << check.rtlOutput << "@" << check.rtlCycle << " = "
     << rtlValue.toString(16);
  if (!txnVarValues.empty()) {
    os << "; stimulus:";
    for (std::size_t t = 0; t < txnVarValues.size(); ++t) {
      os << " txn" << t << "(";
      for (std::size_t i = 0; i < txnVarValues[t].size(); ++i) {
        if (i > 0) os << ",";
        os << txnVarValues[t][i].toString(16);
      }
      os << ")";
    }
  }
  return os.str();
}

namespace {

/// A symbolic value: scalar word or array of words.
struct SymVal {
  aig::Word scalar;
  aig::ArrayWord array;
  bool isArray = false;

  static SymVal ofScalar(aig::Word w) {
    SymVal v;
    v.scalar = std::move(w);
    return v;
  }
  static SymVal ofArray(aig::ArrayWord a) {
    SymVal v;
    v.array = std::move(a);
    v.isArray = true;
    return v;
  }
};

/// Records one free (unbound) input instance so the counterexample can be
/// extracted later.
struct FreeInput {
  unsigned txn;
  unsigned cycle;
  std::size_t inputIndex;  // into ts.inputs()
  aig::Word word;
};

/// Symbolically unrolls one side of the problem, transaction by transaction.
/// `ts` is the system to unroll — the problem's side, or an absint-
/// simplified copy of it (same Context, so the problem's input/state leaves
/// and output names are shared and all bindings stay valid).
class Unroller {
 public:
  Unroller(const SecProblem& problem, Side side,
           const ir::TransitionSystem& ts, aig::Aig& g)
      : problem_(problem),
        side_(side),
        ts_(ts),
        g_(g) {
    ts_.validate();
    for (ir::NodeRef in : ts_.inputs())
      DFV_CHECK_MSG(!in->type().isArray(),
                    "SEC requires scalar side inputs; '"
                        << in->name() << "' is an array (map it at the "
                        << "transactor level instead)");
    // Index the bindings of this side by (input leaf, cycle).
    for (const InputBinding& b : problem.bindings())
      if (b.side == side) bindings_[{b.input, b.cycle}] = b.value;
  }

  /// Initializes the symbolic state from the reset values (BMC).
  void initFromReset() {
    state_.clear();
    for (const auto& sv : ts_.states()) state_.push_back(constState(sv.init));
  }

  /// Initializes the symbolic state with fresh variables (induction step).
  /// States present in `aliases` reuse the given symbolic value instead —
  /// the structural form of an assumed state equality (see the coupling-
  /// invariant handling in checkEquivalence).
  void initSymbolic(
      const std::string& tag,
      const std::unordered_map<ir::NodeRef, SymVal>* aliases = nullptr) {
    state_.clear();
    aig::BitBlaster frame(g_);
    for (const auto& sv : ts_.states()) {
      if (aliases != nullptr) {
        auto it = aliases->find(sv.current);
        if (it != aliases->end()) {
          state_.push_back(it->second);
          continue;
        }
      }
      const ir::Type& t = sv.current->type();
      if (t.isArray()) {
        aig::ArrayWord a;
        for (unsigned i = 0; i < t.depth; ++i)
          a.elems.push_back(frame.freshWord(
              t.width, tag + sv.name() + "#" + std::to_string(i)));
        state_.push_back(SymVal::ofArray(std::move(a)));
      } else {
        state_.push_back(
            SymVal::ofScalar(frame.freshWord(t.width, tag + sv.name())));
      }
    }
  }

  /// Current symbolic value per state leaf (call right after initSymbolic).
  std::unordered_map<ir::NodeRef, SymVal> stateBindingSnapshot() const {
    std::unordered_map<ir::NodeRef, SymVal> snap;
    for (std::size_t i = 0; i < ts_.states().size(); ++i)
      snap.emplace(ts_.states()[i].current, state_[i]);
    return snap;
  }

  /// Runs one transaction with the given transaction-variable words.
  /// Sampled outputs land in outputsAtCycle(); free inputs are recorded.
  void runTransaction(unsigned txnIndex,
                      const std::vector<aig::Word>& txnVarWords) {
    outputs_.assign(problem_.cycles(side_), {});
    for (unsigned cycle = 0; cycle < problem_.cycles(side_); ++cycle) {
      aig::BitBlaster frame(g_);
      bindLeaves(frame, txnVarWords);
      // Inputs: bound expression or fresh free word.
      for (std::size_t i = 0; i < ts_.inputs().size(); ++i) {
        ir::NodeRef in = ts_.inputs()[i];
        auto it = bindings_.find({in, cycle});
        if (it != bindings_.end()) {
          frame.bindScalar(in, frame.blast(it->second));
        } else {
          aig::Word w = frame.freshWord(
              in->width(), sideTag() + in->name() + "@t" +
                               std::to_string(txnIndex) + "c" +
                               std::to_string(cycle));
          freeInputs_.push_back(FreeInput{txnIndex, cycle, i, w});
          frame.bindScalar(in, std::move(w));
        }
      }
      // Outputs sampled this cycle.
      auto& outs = outputs_[cycle];
      for (const auto& o : ts_.outputs())
        outs.emplace(o.name, frame.blast(o.expr));
      // Advance state (simultaneous).
      std::vector<SymVal> next;
      next.reserve(state_.size());
      for (const auto& sv : ts_.states()) {
        if (sv.current->type().isArray())
          next.push_back(SymVal::ofArray(frame.blastArray(sv.next)));
        else
          next.push_back(SymVal::ofScalar(frame.blast(sv.next)));
      }
      state_ = std::move(next);
    }
  }

  const aig::Word& outputAt(const std::string& name, unsigned cycle) const {
    DFV_CHECK(cycle < outputs_.size());
    auto it = outputs_[cycle].find(name);
    DFV_CHECK_MSG(it != outputs_[cycle].end(), "no sampled output " << name);
    return it->second;
  }

  const std::vector<FreeInput>& freeInputs() const { return freeInputs_; }
  const std::vector<SymVal>& state() const { return state_; }
  const ir::TransitionSystem& ts() const { return ts_; }

  /// Binds this side's state leaves into `frame` from the current symbolic
  /// state (used for invariant blasting too).
  void bindStateLeaves(aig::BitBlaster& frame) const {
    for (std::size_t i = 0; i < ts_.states().size(); ++i) {
      ir::NodeRef leaf = ts_.states()[i].current;
      if (state_[i].isArray)
        frame.bindArray(leaf, state_[i].array);
      else
        frame.bindScalar(leaf, state_[i].scalar);
    }
  }

 private:
  std::string sideTag() const { return side_ == Side::kSlm ? "slm." : "rtl."; }

  void bindLeaves(aig::BitBlaster& frame,
                  const std::vector<aig::Word>& txnVarWords) {
    for (std::size_t i = 0; i < problem_.txnVars().size(); ++i)
      frame.bindScalar(problem_.txnVars()[i], txnVarWords[i]);
    bindStateLeaves(frame);
  }

  SymVal constState(const ir::Value& init) {
    aig::BitBlaster frame(g_);
    if (init.isArray) {
      aig::ArrayWord a;
      for (const auto& e : init.array) a.elems.push_back(frame.constWord(e));
      return SymVal::ofArray(std::move(a));
    }
    return SymVal::ofScalar(frame.constWord(init.scalar));
  }

  struct BindKey {
    ir::NodeRef input;
    unsigned cycle;
    bool operator==(const BindKey&) const = default;
  };
  struct BindKeyHash {
    std::size_t operator()(const BindKey& k) const {
      return std::hash<const void*>()(k.input) * 31 + k.cycle;
    }
  };

  const SecProblem& problem_;
  Side side_;
  const ir::TransitionSystem& ts_;
  aig::Aig& g_;
  std::unordered_map<BindKey, ir::NodeRef, BindKeyHash> bindings_;
  std::vector<SymVal> state_;
  std::vector<std::unordered_map<std::string, aig::Word>> outputs_;
  std::vector<FreeInput> freeInputs_;
};

/// Runs one budgeted solve and folds its cost into `phase` (several solves
/// may share one phase entry, e.g. the vacuity check and transaction 0).
sat::Result solveIntoPhase(sat::Solver& solver,
                           const std::vector<sat::Lit>& assumptions,
                           const sat::Budget& budget, PhaseStats& phase) {
  const sat::SolverStats before = solver.stats();
  const auto t0 = std::chrono::steady_clock::now();
  const sat::Result r = solver.solve(assumptions, budget);
  const sat::SolverStats& after = solver.stats();
  phase.seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  phase.conflicts += after.conflicts - before.conflicts;
  phase.decisions += after.decisions - before.decisions;
  phase.propagations += after.propagations - before.propagations;
  phase.restarts += after.restarts - before.restarts;
  phase.learntClauses += after.learntClauses - before.learntClauses;
  phase.deletedClauses += after.deletedClauses - before.deletedClauses;
  phase.subsumedClauses += after.subsumedClauses - before.subsumedClauses;
  phase.vivifiedClauses += after.vivifiedClauses - before.vivifiedClauses;
  phase.eliminatedVars += after.eliminatedVars - before.eliminatedVars;
  phase.inprocessRounds += after.inprocessRounds - before.inprocessRounds;
  if (r == sat::Result::kUnknown) phase.budgetExhausted = true;
  return r;
}

/// The solver interface the engine drives, in one of two modes:
///  * incremental (SecOptions::fraig and ::rewrite both off): one
///    persistent solver + lazy encoder over the unrolling graph; asserted
///    facts become clauses immediately.  This path is identical to the
///    pre-fraig engine.
///  * per-solve (the default): asserted facts accumulate as AIG literals;
///    each solve first rewrites the cone of everything that solve can see
///    (aig::Rewriter — pure structure, between bit-blast and CNF), then
///    SAT-sweeps it (aig::Fraig) on the same solver the main solve runs
///    on, so the rewritten — typically much smaller — cone is already
///    clausified and the sweep's learnt clauses, equivalence units and
///    saved phases are reused.  Model extraction maps unrolling-graph
///    literals through the rewrite's node map and then the sweep's, so
///    counterexamples are exact.
class Miter {
 public:
  Miter(aig::Aig& g, const SecOptions& options)
      : g_(g),
        options_(options),
        perSolve_(options.fraig || options.rewrite) {
    if (!perSolve_) {
      solver_ = std::make_unique<sat::Solver>(options_.solver);
      enc_ = std::make_unique<aig::CnfEncoder>(g_, *solver_);
    }
  }

  void assertTrue(aig::Lit l) {
    if (!perSolve_)
      enc_->assertTrue(l);
    else
      asserted_.push_back(l);
  }

  /// Solves the accumulated assertions, assuming `query` unless it is
  /// aig::kTrue (the constraint-vacuity form of the question).
  sat::Result solve(aig::Lit query, const sat::Budget& budget,
                    PhaseStats& phase) {
    if (!perSolve_) {
      std::vector<sat::Lit> assumptions;
      if (query != aig::kTrue) assumptions.push_back(enc_->satLit(query));
      return solveIntoPhase(*solver_, assumptions, budget, phase);
    }
    std::vector<aig::Lit> roots = asserted_;
    if (query != aig::kTrue) roots.push_back(query);
    // Structural rewrite first: it needs no SAT calls, so everything it
    // removes is cone the sweep below never has to simulate or prove over.
    const aig::Aig* solveG = &g_;
    rewritten_.reset();
    rwAig_.reset();
    if (options_.rewrite) {
      const auto t0 = std::chrono::steady_clock::now();
      rwAig_ = std::make_unique<aig::Aig>();
      rewritten_ = std::make_unique<aig::Rewriter::Result>(
          aig::Rewriter(options_.rewriteOptions).run(g_, roots, *rwAig_));
      const double ms =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count() *
          1e3;
      const aig::RewriteStats& rs = rewritten_->stats;
      phase.rewriteNodesBefore += rs.nodesBefore;
      phase.rewriteNodesAfter += rs.nodesAfter;
      phase.rewriteApplied += rs.rewritesApplied;
      phase.rewriteTimeMs += ms;
      rewriteSaved_ += rs.nodesBefore - rs.nodesAfter;
      rewriteApplied_ += rs.rewritesApplied;
      rewriteTimeMs_ += ms;
      roots = rewritten_->roots;
      solveG = rwAig_.get();
    }
    solver_ = std::make_unique<sat::Solver>(options_.solver);
    if (options_.fraig) {
      // The sweep proves its merges through the same solver the main solve
      // runs on, so the clausified cone, the proven-equivalence units, the
      // learnt clauses and the saved phases all carry over instead of
      // being re-derived from scratch.
      fraigAig_ = std::make_unique<aig::Aig>();
      enc_ = std::make_unique<aig::CnfEncoder>(*fraigAig_, *solver_);
      fraiged_ = std::make_unique<aig::Fraig::Result>(aig::Fraig(
          options_.fraigOptions).run(*solveG, roots, *fraigAig_, *enc_));
      const aig::FraigStats& fs = fraiged_->stats;
      phase.fraigNodesBefore += fs.nodesBefore;
      phase.fraigNodesAfter += fs.nodesAfter;
      phase.fraigMergedNodes += fs.mergedNodes;
      phase.fraigSatCalls += fs.satCalls;
      phase.fraigTimeMs += fs.seconds * 1e3;
      fraigMerged_ += fs.mergedNodes;
      fraigSatCalls_ += fs.satCalls;
      fraigTimeMs_ += fs.seconds * 1e3;
      roots = fraiged_->roots;
    } else {
      fraiged_.reset();
      fraigAig_.reset();
      enc_ = std::make_unique<aig::CnfEncoder>(*solveG, *solver_);
    }
    for (std::size_t i = 0; i < asserted_.size(); ++i)
      enc_->assertTrue(roots[i]);
    std::vector<sat::Lit> assumptions;
    if (query != aig::kTrue)
      assumptions.push_back(enc_->satLit(roots.back()));
    const sat::Result r = solveIntoPhase(*solver_, assumptions, budget, phase);
    // The solver is transient in this mode: bank its cost before the next
    // solve replaces it.
    conflicts_ += solver_->stats().conflicts;
    decisions_ += solver_->stats().decisions;
    bankInprocess(solver_->stats());
    return r;
  }

  /// After kSat: the model value of an unrolling-graph literal (mapped
  /// through the last rewrite and sweep in per-solve mode).
  bool modelOf(aig::Lit l, bool def) {
    if (rewritten_ != nullptr) {
      if (!rewritten_->isMapped(l)) return def;
      l = rewritten_->map(l);
    }
    if (fraiged_ != nullptr) {
      if (!fraiged_->isMapped(l)) return def;
      l = fraiged_->map(l);
    }
    return solver_->modelValueOr(enc_->satLit(l), def);
  }

  /// Folds this miter's total solver + rewrite + fraig cost into the run
  /// stats.
  void foldInto(SecStats& stats) const {
    if (!perSolve_) {
      stats.satConflicts += solver_->stats().conflicts;
      stats.satDecisions += solver_->stats().decisions;
      const sat::SolverStats& ss = solver_->stats();
      stats.satSubsumedClauses += ss.subsumedClauses;
      stats.satVivifiedClauses += ss.vivifiedClauses;
      stats.satEliminatedVars += ss.eliminatedVars;
      stats.satInprocessRounds += ss.inprocessRounds;
    } else {
      stats.satConflicts += conflicts_;
      stats.satDecisions += decisions_;
      stats.satSubsumedClauses += subsumed_;
      stats.satVivifiedClauses += vivified_;
      stats.satEliminatedVars += elimVars_;
      stats.satInprocessRounds += inprocRounds_;
    }
    stats.fraigMergedNodes += fraigMerged_;
    stats.fraigSatCalls += fraigSatCalls_;
    stats.fraigTimeMs += fraigTimeMs_;
    stats.rewriteSavedNodes += rewriteSaved_;
    stats.rewriteApplied += rewriteApplied_;
    stats.rewriteTimeMs += rewriteTimeMs_;
  }

 private:
  void bankInprocess(const sat::SolverStats& ss) {
    subsumed_ += ss.subsumedClauses;
    vivified_ += ss.vivifiedClauses;
    elimVars_ += ss.eliminatedVars;
    inprocRounds_ += ss.inprocessRounds;
  }

  aig::Aig& g_;
  const SecOptions& options_;
  const bool perSolve_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<aig::CnfEncoder> enc_;
  std::vector<aig::Lit> asserted_;  // per-solve mode only
  std::unique_ptr<aig::Aig> rwAig_;              // last solve's rewrite
  std::unique_ptr<aig::Rewriter::Result> rewritten_;
  std::unique_ptr<aig::Aig> fraigAig_;           // last solve's rebuilt graph
  std::unique_ptr<aig::Fraig::Result> fraiged_;  // last solve's sweep
  std::uint64_t conflicts_ = 0, decisions_ = 0;
  std::size_t fraigMerged_ = 0;
  std::uint64_t fraigSatCalls_ = 0;
  double fraigTimeMs_ = 0.0;
  std::size_t rewriteSaved_ = 0;
  std::uint64_t rewriteApplied_ = 0;
  double rewriteTimeMs_ = 0.0;
  std::uint64_t subsumed_ = 0, vivified_ = 0, elimVars_ = 0,
                inprocRounds_ = 0;
};

bv::BitVector extractWord(Miter& miter, const aig::Word& w) {
  bv::BitVector v(static_cast<unsigned>(w.size()));
  for (std::size_t i = 0; i < w.size(); ++i)
    v.setBit(static_cast<unsigned>(i), miter.modelOf(w[i], false));
  return v;
}

/// Builds the complete concrete stimulus for one side from the model.
std::vector<std::vector<std::vector<ir::Value>>> extractSideInputs(
    const SecProblem& problem, Side side, const Unroller& unroller,
    Miter& miter,
    const std::vector<std::vector<bv::BitVector>>& txnVarValues,
    unsigned numTxns) {
  const ir::TransitionSystem& ts = problem.side(side);
  const unsigned cycles = problem.cycles(side);
  // Start with every input zero-filled, then overwrite bound + free.
  std::vector<std::vector<std::vector<ir::Value>>> result(numTxns);
  for (auto& txn : result) {
    txn.assign(cycles, {});
    for (auto& cyc : txn)
      for (ir::NodeRef in : ts.inputs())
        cyc.push_back(ir::Value::zeroOf(in->type()));
  }
  // Bound inputs: evaluate the mapping expressions concretely per txn.
  for (unsigned t = 0; t < numTxns; ++t) {
    ir::Env env;
    for (std::size_t i = 0; i < problem.txnVars().size(); ++i)
      env.emplace(problem.txnVars()[i], ir::Value(txnVarValues[t][i]));
    ir::Evaluator ev(env);
    for (const InputBinding& b : problem.bindings()) {
      if (b.side != side) continue;
      for (std::size_t i = 0; i < ts.inputs().size(); ++i)
        if (ts.inputs()[i] == b.input)
          result[t][b.cycle][i] = ev.eval(b.value);
    }
  }
  // Free inputs: straight from the model.
  for (const FreeInput& f : unroller.freeInputs()) {
    if (f.txn >= numTxns) continue;
    result[f.txn][f.cycle][f.inputIndex] =
        ir::Value(extractWord(miter, f.word));
  }
  return result;
}

/// Replays a counterexample on the IR interpreters and fills in the observed
/// mismatch; throws if the replay does not reproduce a mismatch.
void replayCounterexample(const SecProblem& problem, Counterexample& cex) {
  ir::TsSimulator slmSim(problem.side(Side::kSlm));
  ir::TsSimulator rtlSim(problem.side(Side::kRtl));
  const unsigned numTxns = cex.failingTransaction + 1;
  for (unsigned t = 0; t < numTxns; ++t) {
    // Collect sampled outputs for this transaction.
    std::vector<ir::TsSimulator::StepResult> slmSteps, rtlSteps;
    for (unsigned c = 0; c < problem.cycles(Side::kSlm); ++c)
      slmSteps.push_back(slmSim.step(cex.slmInputs[t][c]));
    for (unsigned c = 0; c < problem.cycles(Side::kRtl); ++c)
      rtlSteps.push_back(rtlSim.step(cex.rtlInputs[t][c]));
    if (t != cex.failingTransaction) continue;
    // Find the claimed failing check and record observed values.
    const ir::TransitionSystem& slm = problem.side(Side::kSlm);
    const ir::TransitionSystem& rtl = problem.side(Side::kRtl);
    auto outIndex = [](const ir::TransitionSystem& ts, const std::string& n) {
      for (std::size_t i = 0; i < ts.outputs().size(); ++i)
        if (ts.outputs()[i].name == n) return i;
      DFV_UNREACHABLE("output vanished");
    };
    const auto si = outIndex(slm, cex.check.slmOutput);
    const auto ri = outIndex(rtl, cex.check.rtlOutput);
    cex.slmValue = slmSteps[cex.check.slmCycle].outputs[si].scalar;
    cex.rtlValue = rtlSteps[cex.check.rtlCycle].outputs[ri].scalar;
    DFV_CHECK_MSG(cex.slmValue != cex.rtlValue,
                  "SEC engine bug: counterexample did not replay — "
                      << cex.summary());
  }
}

/// Shrinks the shared induction budget pool by what one certification pass
/// spent.  Finite caps drain to a minimal positive remainder — never to 0,
/// which would mean "unlimited" — so an exhausted pool makes the next solve
/// fail fast (kUnknown -> budgetExhausted) instead of silently lifting the
/// cap.
sat::Budget drainBudget(sat::Budget b, const inv::Stats& spent) {
  if (b.maxConflicts > 0)
    b.maxConflicts = std::max<std::int64_t>(
        1, b.maxConflicts - static_cast<std::int64_t>(spent.certConflicts));
  if (b.maxPropagations > 0)
    b.maxPropagations = std::max<std::int64_t>(
        1,
        b.maxPropagations - static_cast<std::int64_t>(spent.certPropagations));
  if (b.maxSeconds > 0)
    b.maxSeconds = std::max(1e-9, b.maxSeconds - spent.certSeconds);
  return b;
}

}  // namespace

SecResult checkEquivalence(const SecProblem& problem,
                           const SecOptions& options) {
  DFV_CHECK_MSG(!problem.checks().empty(), "SEC problem has no output checks");
  // Reject malformed budgets at both phase entry points (negative caps used
  // to flip between "already exhausted" and "unlimited" depending on path).
  options.bmcBudget.validate();
  options.inductionBudget.validate();
  DFV_CHECK_MSG(options.bmcStartTransaction == 0 ||
                    options.bmcStartTransaction < options.boundTransactions,
                "bmcStartTransaction " << options.bmcStartTransaction
                                       << " leaves no transaction to solve");
  const auto startTime = std::chrono::steady_clock::now();

  SecResult result;
  aig::Aig g;
  Miter miter(g, options);

  const ir::TransitionSystem* slmTs = &problem.side(Side::kSlm);
  const ir::TransitionSystem* rtlTs = &problem.side(Side::kRtl);

  // Structural slicing first: property-preserving w.r.t. the checked
  // outputs, coupling invariants and constraints, and — unlike the absint
  // rewrite below — sound from an arbitrary start state, so the induction
  // step may (and does) reason over the sliced systems too.  The slices
  // keep every input, state and output declared, so unrolling, aliasing
  // and counterexample extraction index them exactly like the originals.
  std::optional<ir::TransitionSystem> slmSliced, rtlSliced;
  const ir::TransitionSystem* slmForInduction = slmTs;
  const ir::TransitionSystem* rtlForInduction = rtlTs;
  if (options.slice) {
    const auto t0 = std::chrono::steady_clock::now();
    slice::Roots slmRoots, rtlRoots;
    for (const OutputCheck& chk : problem.checks()) {
      slmRoots.outputs.push_back(chk.slmOutput);
      rtlRoots.outputs.push_back(chk.rtlOutput);
    }
    // Coupling invariants are roots on both sides: each one constrains the
    // induction start states, so every state it reads must stay live.
    for (ir::NodeRef inv : problem.couplingInvariants()) {
      slmRoots.extra.push_back(inv);
      rtlRoots.extra.push_back(inv);
    }
    auto fold = [](const slice::Stats& s, SliceSideStats& out) {
      out.statesSevered = s.statesSevered;
      out.seqConstants = s.seqConstants;
      out.nodesBefore = s.nodesBefore;
      out.nodesAfter = s.nodesAfter;
    };
    slice::Stats ss, rs;
    slmSliced = slice::sliceTransitionSystem(*slmTs, slmRoots,
                                             options.sliceOptions, &ss);
    rtlSliced = slice::sliceTransitionSystem(*rtlTs, rtlRoots,
                                             options.sliceOptions, &rs);
    slmTs = slmForInduction = &*slmSliced;
    rtlTs = rtlForInduction = &*rtlSliced;
    SliceStats& st = result.stats.slice;
    st.applied = true;
    fold(ss, st.slm);
    fold(rs, st.rtl);
    st.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  // Certified-invariant strengthening (SecOptions::invariants): mine and
  // Houdini-certify per-state predicates on the systems the induction step
  // will use (sliced-or-original; NEVER the absint copies below, which are
  // reachability-simplified views for BMC only).  A certified predicate
  // holds at reset, in every reachable state, and is closed under one
  // free-input transition of its side, so it is sound to assume at the
  // symbolic induction start and entailed (free) at every BMC transaction
  // boundary.  Certification solves charge options.inductionBudget as a
  // shared pool: the induction solve below runs under the drained
  // remainder, so capped runs stay machine-independent facts.
  std::vector<ir::NodeRef> slmCertified, rtlCertified;
  sat::Budget inductionBudget = options.inductionBudget;
  if (options.invariants && options.tryInduction) {
    InvStats& is = result.stats.inv;
    is.applied = true;
    auto runSide = [&](const ir::TransitionSystem& ts,
                       std::vector<ir::NodeRef>& out) {
      const inv::Result r = inv::mineAndCertify(ts, options.invOptions,
                                                inductionBudget,
                                                options.solver);
      out = r.certified;
      is.candidates += r.stats.candidates;
      is.certified += r.stats.certified;
      is.rounds += r.stats.rounds;
      is.dropped += r.stats.dropped;
      is.certConflicts += r.stats.certConflicts;
      is.certPropagations += r.stats.certPropagations;
      is.certSeconds += r.stats.certSeconds;
      is.budgetExhausted = is.budgetExhausted || r.stats.budgetExhausted;
      inductionBudget = drainBudget(inductionBudget, r.stats);
    };
    runSide(*slmForInduction, slmCertified);
    runSide(*rtlForInduction, rtlCertified);
  }

  // Word-level preprocessing: simplify both sides under reachable-from-reset
  // facts and unroll BMC from the simplified copies.  Counterexample replay
  // and the induction step below do not use these copies — the facts only
  // hold on traces that start at reset.
  std::optional<ir::TransitionSystem> slmSimplified, rtlSimplified;
  if (options.absint) {
    const auto t0 = std::chrono::steady_clock::now();
    absint::SimplifyStats ss;
    slmSimplified =
        absint::analyzeAndSimplify(*slmTs, options.absintOptions, &ss);
    rtlSimplified =
        absint::analyzeAndSimplify(*rtlTs, options.absintOptions, &ss);
    slmTs = &*slmSimplified;
    rtlTs = &*rtlSimplified;
    AbsintStats& as = result.stats.absint;
    as.applied = true;
    as.nodesFolded = ss.nodesFolded;
    as.muxesPruned = ss.muxesPruned;
    as.opsNarrowed = ss.opsNarrowed;
    as.bitsNarrowed = ss.bitsNarrowed;
    as.tsNodesBefore = ss.nodesBefore;
    as.tsNodesAfter = ss.nodesAfter;
    as.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  Unroller slm(problem, Side::kSlm, *slmTs, g);
  Unroller rtl(problem, Side::kRtl, *rtlTs, g);
  slm.initFromReset();
  rtl.initFromReset();

  std::vector<std::vector<aig::Word>> txnVarWords;  // [txn][var]

  auto finishStats = [&] {
    // Both graphs count: the induction step builds a second AIG (gi below)
    // whose size result.stats.inductionAigNodes carries by then.
    result.stats.bmcAigNodes = g.numNodes();
    result.stats.aigNodes =
        result.stats.bmcAigNodes + result.stats.inductionAigNodes;
    miter.foldInto(result.stats);
    result.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime)
            .count();
  };

  // ----- BMC over transactions from reset --------------------------------
  for (unsigned t = 0; t < options.boundTransactions; ++t) {
    // Depth-split support (bmcStartTransaction): depths below the start are
    // unrolled and their output equalities *asserted* instead of solved —
    // another run owns finding counterexamples there.  Skipped depths hit
    // no fault site and log no phase entry, so a depth task's telemetry is
    // exactly its own solves.
    const bool solveThisDepth = t >= options.bmcStartTransaction;
    // Fault-injection site: one hit per solved BMC transaction.  kThrow
    // models an engine crash mid-run; the solver-shaped policies behave
    // exactly like a budget that expired before this transaction's first
    // solve, so the verdict is the honest kInconclusive either way.
    if (solveThisDepth) {
      switch (fault::onSiteHit(fault::Site::kSecBmcPhase)) {
        case fault::Policy::kThrowCheckError:
          fault::throwInjected(fault::Site::kSecBmcPhase);
        case fault::Policy::kSpuriousUnknown:
        case fault::Policy::kExhaustBudget: {
          PhaseStats cut;
          cut.budgetExhausted = true;
          result.stats.bmcTransactions.push_back(cut);
          result.verdict = Verdict::kInconclusive;
          finishStats();
          return result;
        }
        default:
          break;
      }
    }
    // Fresh transaction variables for this transaction.
    std::vector<aig::Word> vars;
    {
      aig::BitBlaster frame(g);
      for (ir::NodeRef v : problem.txnVars())
        vars.push_back(frame.freshWord(
            v->width(), v->name() + "@t" + std::to_string(t)));
    }
    txnVarWords.push_back(vars);
    // Constraints on this transaction's variables are hard clauses.
    {
      aig::BitBlaster frame(g);
      for (std::size_t i = 0; i < problem.txnVars().size(); ++i)
        frame.bindScalar(problem.txnVars()[i], vars[i]);
      for (ir::NodeRef c : problem.constraints())
        miter.assertTrue(frame.blast(c)[0]);
    }
    PhaseStats phase;
    // Vacuity guard (first solved transaction only — constraints repeat):
    // an unsatisfiable constraint set would make every check pass trivially,
    // the formal counterpart of a testbench that generates no stimulus.
    if (solveThisDepth && t == options.bmcStartTransaction &&
        !problem.constraints().empty()) {
      const sat::Result vr =
          miter.solve(aig::kTrue, options.bmcBudget, phase);
      if (vr == sat::Result::kUnknown) {
        result.stats.bmcTransactions.push_back(phase);
        result.verdict = Verdict::kInconclusive;
        finishStats();
        return result;
      }
      DFV_CHECK_MSG(vr == sat::Result::kSat,
                    "SEC constraints are unsatisfiable: every property "
                    "would hold vacuously (over-constrained input space)");
    }

    // Certified invariants hold in every reachable state and the unrolling
    // visits only reachable states, so asserting them at each transaction
    // boundary is free strengthening (at t=0 they fold to constant true
    // over the reset words).  A constant-false assertion would make every
    // check pass vacuously — that can only mean a certifier soundness bug,
    // so it is rejected loudly instead.
    if (!slmCertified.empty() || !rtlCertified.empty()) {
      aig::BitBlaster frame(g);
      slm.bindStateLeaves(frame);
      rtl.bindStateLeaves(frame);
      auto assertFact = [&](ir::NodeRef p) {
        const aig::Lit l = frame.blast(p)[0];
        if (l == aig::kTrue) return;
        DFV_CHECK_MSG(l != aig::kFalse,
                      "certified invariant is false on the BMC unrolling "
                      "(certifier soundness bug)");
        miter.assertTrue(l);
      };
      for (ir::NodeRef p : slmCertified) assertFact(p);
      for (ir::NodeRef p : rtlCertified) assertFact(p);
    }

    slm.runTransaction(t, vars);
    rtl.runTransaction(t, vars);

    // Any-output-differs literal for this transaction.
    aig::Lit anyDiff = aig::kFalse;
    std::vector<aig::Lit> checkDiffs;
    aig::BitBlaster frame(g);
    for (const OutputCheck& chk : problem.checks()) {
      const aig::Word& so = slm.outputAt(chk.slmOutput, chk.slmCycle);
      const aig::Word& ro = rtl.outputAt(chk.rtlOutput, chk.rtlCycle);
      const aig::Lit diff = aig::negate(frame.eqGate(so, ro));
      checkDiffs.push_back(diff);
      anyDiff = g.makeOr(anyDiff, diff);
    }
    if (!solveThisDepth) {
      // Below the split point: assume equality at this depth and move on.
      miter.assertTrue(aig::negate(anyDiff));
      if (t == 0 && options.boundTransactions > 1)
        g.reserve(g.numNodes() * options.boundTransactions);
      continue;
    }
    result.stats.transactionsChecked = t + 1;

    const sat::Result br = miter.solve(anyDiff, options.bmcBudget, phase);
    result.stats.bmcTransactions.push_back(phase);
    if (br == sat::Result::kUnknown) {
      // Budget expired with neither equivalence nor a counterexample at
      // this depth: the only honest verdict.
      result.verdict = Verdict::kInconclusive;
      finishStats();
      return result;
    }
    if (br == sat::Result::kSat) {
      // Counterexample: identify which check fired, extract, replay.
      Counterexample cex;
      cex.failingTransaction = t;
      // Identify which check fired.  The per-check diff literals may have no
      // model variable of their own (polarity-aware encoding only clausifies
      // what a root needs, and fraiging can reroute the solved cone around
      // them), so evaluate the unrolling graph under the extracted input
      // assignment — inputs always map, and ones outside the solved cone are
      // unconstrained, so their default is consistent with the model.
      {
        std::unordered_map<std::uint32_t, bool> inputVals;
        for (const std::uint32_t in : g.inputs())
          inputVals[in] = miter.modelOf(in << 1, false);
        const std::vector<bool> nodeVals = g.evaluate(inputVals);
        for (std::size_t c = 0; c < problem.checks().size(); ++c) {
          if (aig::Aig::litValue(nodeVals, checkDiffs[c])) {
            cex.check = problem.checks()[c];
            break;
          }
        }
      }
      for (unsigned tt = 0; tt <= t; ++tt) {
        std::vector<bv::BitVector> vals;
        for (const auto& w : txnVarWords[tt])
          vals.push_back(extractWord(miter, w));
        cex.txnVarValues.push_back(std::move(vals));
      }
      cex.slmInputs = extractSideInputs(problem, Side::kSlm, slm, miter,
                                        cex.txnVarValues, t + 1);
      cex.rtlInputs = extractSideInputs(problem, Side::kRtl, rtl, miter,
                                        cex.txnVarValues, t + 1);
      replayCounterexample(problem, cex);
      result.verdict = Verdict::kNotEquivalent;
      result.cex = std::move(cex);
      finishStats();
      return result;
    }
    // Outputs proven equal at this depth: assert it to help deeper frames.
    miter.assertTrue(aig::negate(anyDiff));
    if (t == 0 && options.boundTransactions > 1) {
      // One transaction's frame is now in the graph: pre-size the node
      // vectors and the strash table for the whole unrolling so they stop
      // rehash-growing (bench_sec_ablation measures the bucket counts).
      g.reserve(g.numNodes() * options.boundTransactions);
    }
  }

  result.verdict = Verdict::kBoundedEquivalent;

  // ----- inductive step ----------------------------------------------------
  if (options.tryInduction) {
    result.stats.inductionAttempted = true;
    // Fault-injection site: the induction phase boundary.  The bounded
    // verdict is already sound on its own, so an injected cutoff — like a
    // real one — only forgoes the upgrade to proven.
    switch (fault::onSiteHit(fault::Site::kSecInductionPhase)) {
      case fault::Policy::kThrowCheckError:
        fault::throwInjected(fault::Site::kSecInductionPhase);
      case fault::Policy::kSpuriousUnknown:
      case fault::Policy::kExhaustBudget:
        result.stats.induction.budgetExhausted = true;
        result.stats.inductionClosed = false;
        finishStats();
        return result;
      default:
        break;
    }
    bool closed = true;
    // Base: reset states must satisfy every coupling invariant.
    {
      ir::Env env;
      for (const auto& sv : problem.side(Side::kSlm).states())
        env.emplace(sv.current, sv.init);
      for (const auto& sv : problem.side(Side::kRtl).states())
        env.emplace(sv.current, sv.init);
      for (ir::NodeRef inv : problem.couplingInvariants()) {
        if (ir::Evaluator::evaluate(inv, env).scalar.isZero()) closed = false;
      }
    }
    if (closed) {
      aig::Aig gi;
      Miter miterI(gi, options);
      // Never the absint copies: absint facts are reachability facts and do
      // not hold in the symbolic start states the induction step assumes.
      // The *sliced* systems are fine — severed state is outside every
      // checked cone on any trace, and sequential constants are inductive
      // invariants, proven wherever the step's conclusion is applied.
      Unroller slmI(problem, Side::kSlm, *slmForInduction, gi);
      Unroller rtlI(problem, Side::kRtl, *rtlForInduction, gi);
      slmI.initSymbolic("ind.");
      // Invariants of the form eq(slm-state, rtl-state) are applied
      // *structurally*: the RTL leaf reuses the SLM leaf's symbolic words,
      // so logic that is identical on both sides collapses in the AIG
      // instead of being re-proven clause by clause (this is the internal-
      // equivalence-point optimization real SEC tools rely on).  All other
      // invariant shapes are assumed via CNF.
      std::unordered_map<ir::NodeRef, SymVal> aliases;
      std::vector<ir::NodeRef> cnfInvariants;
      {
        const auto slmSnap = slmI.stateBindingSnapshot();
        const ir::TransitionSystem& slmTs = problem.side(Side::kSlm);
        const ir::TransitionSystem& rtlTs = problem.side(Side::kRtl);
        auto isStateOf = [](const ir::TransitionSystem& ts, ir::NodeRef n) {
          if (n->op() != ir::Op::kState) return false;
          return ts.findState(n->name()) != nullptr &&
                 ts.findState(n->name())->current == n;
        };
        for (ir::NodeRef inv : problem.couplingInvariants()) {
          if (options.structuralAliasing && inv->op() == ir::Op::kEq) {
            ir::NodeRef a = inv->operand(0);
            ir::NodeRef b = inv->operand(1);
            if (isStateOf(slmTs, a) && isStateOf(rtlTs, b) &&
                aliases.count(b) == 0) {
              aliases.emplace(b, slmSnap.at(a));
              continue;
            }
            if (isStateOf(slmTs, b) && isStateOf(rtlTs, a) &&
                aliases.count(a) == 0) {
              aliases.emplace(a, slmSnap.at(b));
              continue;
            }
          }
          cnfInvariants.push_back(inv);
        }
      }
      rtlI.initSymbolic("ind.", &aliases);
      // Assume the remaining invariants at transaction start.
      {
        aig::BitBlaster frame(gi);
        slmI.bindStateLeaves(frame);
        rtlI.bindStateLeaves(frame);
        for (ir::NodeRef inv : cnfInvariants)
          miterI.assertTrue(frame.blast(inv)[0]);
        // Certified invariants join the hypothesis: assumed at the symbolic
        // start, never added to the violation disjunction below — they are
        // already-proven facts of every reachable state (each carries its
        // own Houdini SAT certificate), not proof obligations of this step.
        auto assumeCertified = [&](ir::NodeRef p) {
          const aig::Lit l = frame.blast(p)[0];
          if (l == aig::kTrue) return;
          DFV_CHECK_MSG(l != aig::kFalse,
                        "certified invariant is constant false at the "
                        "symbolic induction start (certifier soundness bug)");
          miterI.assertTrue(l);
        };
        for (ir::NodeRef p : slmCertified) assumeCertified(p);
        for (ir::NodeRef p : rtlCertified) assumeCertified(p);
      }
      // One symbolic transaction.
      std::vector<aig::Word> vars;
      {
        aig::BitBlaster frame(gi);
        for (ir::NodeRef v : problem.txnVars())
          vars.push_back(frame.freshWord(v->width(), "ind." + v->name()));
        for (std::size_t i = 0; i < problem.txnVars().size(); ++i)
          frame.bindScalar(problem.txnVars()[i], vars[i]);
        for (ir::NodeRef c : problem.constraints())
          miterI.assertTrue(frame.blast(c)[0]);
      }
      slmI.runTransaction(0, vars);
      rtlI.runTransaction(0, vars);
      // Violation: any output differs OR any invariant broken at the end.
      aig::Lit violation = aig::kFalse;
      {
        aig::BitBlaster frame(gi);
        for (const OutputCheck& chk : problem.checks()) {
          const aig::Word& so = slmI.outputAt(chk.slmOutput, chk.slmCycle);
          const aig::Word& ro = rtlI.outputAt(chk.rtlOutput, chk.rtlCycle);
          violation = gi.makeOr(violation,
                                aig::negate(frame.eqGate(so, ro)));
        }
      }
      {
        aig::BitBlaster frame(gi);
        slmI.bindStateLeaves(frame);
        rtlI.bindStateLeaves(frame);
        for (ir::NodeRef inv : problem.couplingInvariants())
          violation =
              gi.makeOr(violation, aig::negate(frame.blast(inv)[0]));
      }
      const sat::Result ir = miterI.solve(violation, inductionBudget,
                                          result.stats.induction);
      // kUnknown leaves `closed` false: the bounded verdict is sound on its
      // own, so an induction cutoff only forgoes the upgrade to proven.
      closed = ir == sat::Result::kUnsat;
      result.stats.inductionAigNodes = gi.numNodes();
      miterI.foldInto(result.stats);
    }
    result.stats.inductionClosed = closed;
    if (closed) result.verdict = Verdict::kProvenEquivalent;
  }

  finishStats();
  return result;
}

}  // namespace dfv::sec
