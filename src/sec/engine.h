// The sequential equivalence checking engine.
//
// Reconstructs the formal flow of the paper's §2: a bounded model check over
// k repeated transactions from the reset states (the base verdict), plus a
// one-transaction inductive step over symbolic start states constrained by
// the problem's coupling invariants (the full proof when it succeeds).
//
// Counterexamples are extracted as complete concrete stimulus (transaction
// variables plus every free input, per cycle), replayed against the IR
// interpreter of both sides, and returned with the observed mismatching
// output values — so a SEC failure arrives as a runnable test, the property
// the paper stresses for quickly localizing SLM/RTL divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "absint/analysis.h"
#include "aig/bitblast.h"
#include "aig/cnf.h"
#include "aig/fraig.h"
#include "aig/rewrite.h"
#include "inv/inv.h"
#include "sat/solver.h"
#include "sec/transaction.h"
#include "slice/slice.h"

namespace dfv::sec {

/// Outcome of a SEC run.
enum class Verdict {
  kProvenEquivalent,    ///< BMC clean and inductive step closed
  kBoundedEquivalent,   ///< BMC clean for k transactions; induction failed
  kNotEquivalent,       ///< concrete counterexample found
  kInconclusive,        ///< a resource budget expired before BMC finished
};

const char* verdictName(Verdict v);

/// A concrete distinguishing run.
struct Counterexample {
  /// Transaction index (0-based) at which an output check failed.
  unsigned failingTransaction = 0;
  /// The check that failed.
  OutputCheck check;
  /// Values of each transaction variable, per transaction
  /// ([txn][i] parallel to problem.txnVars()).
  std::vector<std::vector<bv::BitVector>> txnVarValues;
  /// Complete per-cycle stimulus: [txn][cycle][input] parallel to each
  /// side's ts.inputs().
  std::vector<std::vector<std::vector<ir::Value>>> slmInputs;
  std::vector<std::vector<std::vector<ir::Value>>> rtlInputs;
  /// Observed mismatching values (from interpreter replay).
  bv::BitVector slmValue;
  bv::BitVector rtlValue;

  std::string summary() const;
};

/// Telemetry for one solver phase (one BMC transaction, or the inductive
/// step): SAT-statistic deltas attributable to that phase's solve calls,
/// plus their wall-clock time.  Populated whether or not the phase hit its
/// budget, so an interrupted run still reports how far it got.
struct PhaseStats {
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learntClauses = 0;
  std::uint64_t deletedClauses = 0;
  bool budgetExhausted = false;  ///< a solve in this phase returned kUnknown
  /// SAT-sweeping cost/effect for this phase's solves (all zero when
  /// SecOptions::fraig is off).
  std::size_t fraigNodesBefore = 0;  ///< and-nodes in the solved cone
  std::size_t fraigNodesAfter = 0;   ///< and-nodes after merging
  std::size_t fraigMergedNodes = 0;
  std::uint64_t fraigSatCalls = 0;
  double fraigTimeMs = 0.0;
  /// Structural-rewrite cost/effect for this phase's solves (all zero when
  /// SecOptions::rewrite is off).
  std::size_t rewriteNodesBefore = 0;  ///< and-nodes in the solved cone
  std::size_t rewriteNodesAfter = 0;   ///< and-nodes after rewriting
  std::uint64_t rewriteApplied = 0;    ///< NPN-table rewrites committed
  double rewriteTimeMs = 0.0;
  /// Clause-database inprocessing deltas for this phase's solves (all zero
  /// when SecOptions::solver.inprocess is off).
  std::uint64_t subsumedClauses = 0;
  std::uint64_t vivifiedClauses = 0;
  std::uint64_t eliminatedVars = 0;
  std::uint64_t inprocessRounds = 0;
};

/// Cost and effect of the word-level abstract-interpretation preprocessing
/// (SecOptions::absint): both sides are analyzed and rewritten once, before
/// the BMC unrolling is bit-blasted.
struct AbsintStats {
  bool applied = false;            ///< analysis ran (SecOptions::absint on)
  std::uint64_t nodesFolded = 0;   ///< IR nodes replaced by proven constants
  std::uint64_t muxesPruned = 0;   ///< muxes with proven-constant selectors
  std::uint64_t opsNarrowed = 0;   ///< add/sub/mul rewritten at lower width
  std::uint64_t bitsNarrowed = 0;  ///< total width removed by narrowing
  std::uint64_t tsNodesBefore = 0;  ///< IR cone nodes, both sides, before
  std::uint64_t tsNodesAfter = 0;   ///< IR cone nodes, both sides, after
  double seconds = 0.0;             ///< analysis + rewrite wall-clock
};

/// Per-side effect of the structural slicing pass (SecOptions::slice).
struct SliceSideStats {
  std::uint64_t statesSevered = 0;  ///< state vars outside every root cone
  std::uint64_t seqConstants = 0;   ///< latches substituted by reset values
  std::uint64_t nodesBefore = 0;    ///< unique IR cone nodes before
  std::uint64_t nodesAfter = 0;     ///< unique IR cone nodes after
};

/// Cost and effect of the induction-sound structural slicing preprocessing
/// (SecOptions::slice): both sides are sliced once, before anything is
/// unrolled, and — unlike absint — the result also feeds the induction
/// systems.
struct SliceStats {
  bool applied = false;
  SliceSideStats slm{};
  SliceSideStats rtl{};
  double seconds = 0.0;  ///< both sides' analysis + rebuild wall-clock
};

/// Cost and effect of the certified-invariant strengthening pass
/// (SecOptions::invariants): dfv::inv runs once per side on the systems the
/// induction step will use, and the certified predicates join the induction
/// hypothesis (plus free BMC boundary assertions).  Counters aggregate both
/// sides; certification solver cost is kept here, NOT in
/// satConflicts/satDecisions — phase telemetry is unchanged by
/// strengthening.
struct InvStats {
  bool applied = false;  ///< the pass ran (invariants on, induction wanted)
  std::uint64_t candidates = 0;
  std::uint64_t certified = 0;
  std::uint64_t rounds = 0;
  std::uint64_t dropped = 0;
  std::uint64_t certConflicts = 0;
  std::uint64_t certPropagations = 0;
  double certSeconds = 0.0;
  /// Certification exhausted the induction budget pool on some side: that
  /// side contributed no invariants and the induction solve ran under the
  /// drained remainder (so it reports its own budgetExhausted).
  bool budgetExhausted = false;
};

struct SecStats {
  unsigned transactionsChecked = 0;
  std::size_t aigNodes = 0;           ///< total across both graphs
  std::size_t bmcAigNodes = 0;        ///< the BMC unrolling graph
  std::size_t inductionAigNodes = 0;  ///< the induction graph (0 if unused)
  std::uint64_t satConflicts = 0;
  std::uint64_t satDecisions = 0;
  /// Fraig totals across all phases (see the per-phase fields for splits).
  std::size_t fraigMergedNodes = 0;
  std::uint64_t fraigSatCalls = 0;
  double fraigTimeMs = 0.0;
  /// Rewrite totals across all phases (see the per-phase fields for splits).
  std::size_t rewriteSavedNodes = 0;  ///< sum of (before - after) per solve
  std::uint64_t rewriteApplied = 0;
  double rewriteTimeMs = 0.0;
  /// Inprocessing totals across all phases.
  std::uint64_t satSubsumedClauses = 0;
  std::uint64_t satVivifiedClauses = 0;
  std::uint64_t satEliminatedVars = 0;
  std::uint64_t satInprocessRounds = 0;
  double seconds = 0.0;
  bool inductionAttempted = false;
  bool inductionClosed = false;
  /// One entry per BMC transaction attempted, in order.  Transaction 0 also
  /// accounts for the constraint-vacuity solve.
  std::vector<PhaseStats> bmcTransactions;
  /// The inductive-step solve (zeroed when induction never ran).
  PhaseStats induction{};
  /// Word-level preprocessing telemetry (see SecOptions::absint).
  AbsintStats absint{};
  /// Structural slicing telemetry (see SecOptions::slice).
  SliceStats slice{};
  /// Certified-invariant strengthening telemetry (see
  /// SecOptions::invariants).
  InvStats inv{};
};

struct SecResult {
  Verdict verdict = Verdict::kBoundedEquivalent;
  std::optional<Counterexample> cex;
  SecStats stats;
};

struct SecOptions {
  /// Number of transactions to unroll from reset.
  unsigned boundTransactions = 4;
  /// First transaction depth the BMC phase actually *solves*.  Depths below
  /// it are still unrolled, but their output equalities are asserted as
  /// facts instead of checked — the depth-split contract behind
  /// core::checkBmcParallel, where depth t's task solves only transaction t
  /// and a lower-depth counterexample is the lower-depth task's job.  A
  /// nonzero start is only sound when every depth below it is covered by
  /// another run; standalone callers should leave it 0.  The vacuity check
  /// runs with the first solved transaction.
  unsigned bmcStartTransaction = 0;
  /// Attempt the inductive step to upgrade bounded -> proven.
  bool tryInduction = true;
  /// Per-instance SAT solver heuristics (seed, phase saving, restart
  /// policy, inprocessing).  The portfolio racer (core::buildPortfolio)
  /// diversifies these.  Every Miter solver this run constructs —
  /// incremental or per-solve fraig-mode — uses them.  SEC turns clause-DB
  /// inprocessing on (the raw sat::Solver default is off): vivification,
  /// subsumption and bounded variable elimination never change verdicts,
  /// only the search trajectory, and their work is charged against the
  /// solve's Budget so capped verdicts remain machine-independent.
  sat::SolverOptions solver{.inprocess = true};
  /// Apply equality-shaped coupling invariants structurally (shared
  /// symbolic variables) instead of as CNF constraints.  On by default;
  /// exposed so bench_sec_ablation can quantify the optimization (see
  /// DESIGN.md §7).  Verdicts are identical either way.
  bool structuralAliasing = true;
  /// SAT-sweep (fraig) the miter cone before every BMC and induction solve:
  /// seeded random simulation proposes candidate equivalence classes,
  /// incremental SAT proves or refutes them, and proven-equal nodes are
  /// merged before the solver sees the formula (see aig/fraig.h and
  /// DESIGN.md).  Composes with structuralAliasing: aliasing makes the two
  /// sides share state variables, fraiging then proves and merges the
  /// internal points that became semantically equal.  Only unconditional
  /// equivalences are merged, so verdicts are identical either way.
  bool fraig = true;
  /// Tuning for the fraig pass (seed, stimulus size, per-candidate budget).
  aig::FraigOptions fraigOptions{};
  /// DAG-aware structural rewrite (aig::Rewriter) of the miter cone before
  /// each solve, between bit-blasting and CNF: AND-tree balancing plus
  /// 4-input-cut rewriting against the NPN optimal-structure table.  Like
  /// fraig the pass is unconditional — it never sees the problem
  /// constraints — so it is sound for BMC and induction alike, and it is
  /// deterministic, so verdicts are identical with it on or off (tests and
  /// bench_sec_ablation assert this).  Composes with fraig: rewriting
  /// shrinks the graph the sweep must simulate and prove over, fraig then
  /// merges the semantic equivalences structure alone cannot see.
  bool rewrite = true;
  /// Tuning for the rewrite pass (balancing, cut bound, pass count).
  aig::RewriteOptions rewriteOptions{};
  /// Run the word-level abstract interpretation (dfv::absint) on both sides
  /// and unroll the BMC phase from the simplified systems: nodes proven
  /// constant fold away, muxes with proven selectors lose their dead arm,
  /// and wrap-around arithmetic with proven-zero high bits narrows — all
  /// before the bit-blaster sees the logic.  The rewrites are justified by
  /// reachable-from-reset facts, which is exactly the BMC trace set, so
  /// verdicts and counterexamples are identical with this on or off (tests
  /// and bench_sec_ablation assert this).  The induction step reasons from
  /// symbolic start states where those facts do not hold, so it always uses
  /// the original systems.
  bool absint = true;
  /// Tuning for the analysis fixpoint (widening, refinement budget).
  absint::Options absintOptions{};
  /// Slice both sides (dfv::slice) against the checked outputs, coupling
  /// invariants and constraints before anything is unrolled: state
  /// variables and logic outside every property cone are severed, and
  /// latches the ternary fixpoint proves stuck at their reset value are
  /// substituted by constants.  Both transforms are sound from an
  /// arbitrary start state (slicing is property-preserving; the stuck-at
  /// facts are inductive invariants), so — unlike absint — they apply to
  /// the BMC unrolling AND the induction systems.  This is the only
  /// preprocessing layer allowed to shrink stats.inductionAigNodes;
  /// verdicts are identical on or off (tests and bench_sec_ablation
  /// assert this).
  bool slice = true;
  /// Tuning for the slicing passes (COI severing, constant detection).
  slice::Options sliceOptions{};
  /// Mine candidate invariants from the absint fixpoint and the ternary
  /// greatest fixpoint, certify a simultaneously-inductive subset with
  /// dfv::inv's Houdini loop, and conjoin the certified predicates to the
  /// k-induction hypothesis (they are also asserted at BMC transaction
  /// boundaries as free strengthening).  This is the ONLY channel through
  /// which reachability-shaped facts reach the induction step: soundness
  /// rests on the per-predicate SAT certificate, not on the analyzers.
  /// Certification solves are charged against inductionBudget as a shared
  /// pool — what certification spends, the induction solve no longer has —
  /// so capped runs stay machine-independent.  BMC-only verdicts are
  /// identical on or off (the assertions are entailed facts); induction can
  /// only gain (bounded -> proven), never lose, a verdict.  The mining
  /// analysis is private (invOptions.absintOptions), so certified sets are
  /// independent of the SecOptions::absint toggle.
  bool invariants = true;
  /// Tuning for mining and certification (see inv::Options).
  inv::Options invOptions{};
  /// Resource cap applied to each BMC solve (one per transaction, plus the
  /// constraint-vacuity check).  Default-constructed = unlimited.  When a
  /// BMC solve is cut off the engine stops and returns kInconclusive —
  /// neither equivalence nor a counterexample is known at that depth.
  sat::Budget bmcBudget{};
  /// Resource cap for the inductive-step solve.  When it is cut off the
  /// bounded verdict (which is already sound) stands, and
  /// stats.induction.budgetExhausted records the failed upgrade.
  sat::Budget inductionBudget{};
};

/// Runs the equivalence check.  Throws CheckError on malformed problems
/// (e.g. no output checks) and if a counterexample fails to replay — that
/// would indicate an engine bug, never a model property.  Budget exhaustion
/// is not an error: the run returns Verdict::kInconclusive (or the sound
/// bounded verdict, for an induction-only cutoff) with per-phase stats.
SecResult checkEquivalence(const SecProblem& problem,
                           const SecOptions& options = {});

}  // namespace dfv::sec
