// Lowering an RTL netlist to a word-level transition system.
//
// This is the RTL front-end of the sequential equivalence checker: a
// flattened Module becomes an ir::TransitionSystem whose states are the DFFs
// plus one array state and one registered-read-data state per memory port.
// The TsSimulator over the lowered system is differentially tested against
// the cycle-accurate rtl::Simulator (same netlist, same stimulus, same
// outputs) — that agreement is what lets SEC verdicts transfer to the
// simulated RTL.
#pragma once

#include <string>

#include "ir/transition_system.h"
#include "rtl/netlist.h"

namespace dfv::rtl {

/// Lowers `m` (flattened automatically) into a TransitionSystem allocated in
/// `ctx`.  All input/state names are prefixed with `prefix` so two designs
/// can share one Context (as the SEC product machine requires).
ir::TransitionSystem lowerToTransitionSystem(const Module& m,
                                             ir::Context& ctx,
                                             const std::string& prefix = "");

}  // namespace dfv::rtl
