// Netlist mutation for verification-flow qualification.
//
// A verification methodology is only as good as its ability to catch real
// bugs; mutation testing measures that directly.  mutate() applies one
// random, semantics-changing-in-general edit to a copy of a module (operator
// swap, constant bit flip, comparison off-by-one, mux polarity inversion).
// Running the SLM-vs-RTL flow over a mutant population answers the question
// the paper's methodology implies: does the chosen verification method
// (cosim stimulus, SEC) kill the mutants?  (Some mutants are functionally
// equivalent by masking; the flow must *prove* those, not merely miss them.)
#pragma once

#include <optional>
#include <string>

#include "rtl/netlist.h"

namespace dfv::rtl {

/// A mutation applied to a module.
struct Mutation {
  Module module;            ///< the mutated copy
  std::string description;  ///< human-readable edit description
};

/// Applies the `index`-th applicable mutation to a copy of `m` (cells only;
/// structure and widths stay legal).  Returns nullopt once `index` exceeds
/// the number of applicable mutation sites, so callers can enumerate the
/// full mutant population with a simple loop.
std::optional<Mutation> mutate(const Module& m, std::size_t index);

/// Number of applicable mutation sites in `m`.
std::size_t countMutationSites(const Module& m);

}  // namespace dfv::rtl
