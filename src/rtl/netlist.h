// Structural RTL netlists.
//
// This is the RTL substrate of the reproduction: a synchronous,
// single-clock-domain netlist of word-level combinational cells, D
// flip-flops, and synchronous-read memories, with module hierarchy.  It plays
// the role Verilog RTL plays in the paper: designs are built through the
// builder API (the "RTL designer" view), simulated cycle-accurately
// (src/rtl/sim.h), and lowered to an ir::TransitionSystem for sequential
// equivalence checking (src/rtl/lower.h).
//
// Cells reuse ir::Op for their operation kinds; only the scalar operation
// subset is legal in a cell (leaves, arrays, and mux/concat/extract/... are
// all expressed structurally).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/check.h"
#include "ir/expr.h"

namespace dfv::rtl {

/// Handle to a net within one Module.  Not valid across modules.
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = ~NetId{0};

/// A combinational cell: output = op(inputs).
struct Cell {
  ir::Op op = ir::Op::kAdd;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
  unsigned attr0 = 0, attr1 = 0;  ///< extract hi/lo; zext/sext target width
  bv::BitVector constVal;         ///< kConst only
};

/// A D flip-flop with optional clock-enable and synchronous reset.
struct Dff {
  std::string name;
  NetId d = kNoNet;
  NetId q = kNoNet;
  NetId enable = kNoNet;     ///< kNoNet = always enabled
  NetId syncReset = kNoNet;  ///< kNoNet = no sync reset
  bv::BitVector resetValue;  ///< power-on AND sync-reset value
};

/// A synchronous-read, synchronous-write memory.  Reads have one cycle of
/// latency (the read address is registered), the paper's §3.2 example of a
/// micro-architectural detail SLMs typically abstract away.
struct Memory {
  struct ReadPort {
    NetId addr = kNoNet;
    NetId data = kNoNet;  ///< registered read data (valid next cycle)
  };
  struct WritePort {
    NetId enable = kNoNet;
    NetId addr = kNoNet;
    NetId data = kNoNet;
  };
  std::string name;
  unsigned width = 0;
  unsigned depth = 0;
  std::vector<ReadPort> readPorts;
  std::vector<WritePort> writePorts;
  std::vector<bv::BitVector> init;  ///< empty = all zero

  unsigned addrWidth() const { return ir::Type{width, depth}.indexWidth(); }
};

class Module;

/// A submodule instantiation with a by-name port binding.
struct Instance {
  std::string name;
  const Module* module = nullptr;
  std::map<std::string, NetId> portMap;  ///< formal port name -> actual net
};

/// A synthesizable module: ports, nets, cells, registers, memories,
/// instances.  Build with the fluent helpers; structural invariants (single
/// driver, width agreement) are enforced at construction.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ----- nets & ports ----------------------------------------------------
  NetId addNet(unsigned width, std::string name = "");
  unsigned netWidth(NetId n) const {
    DFV_CHECK(n < netWidths_.size());
    return netWidths_[n];
  }
  const std::string& netName(NetId n) const {
    DFV_CHECK(n < netNames_.size());
    return netNames_[n];
  }
  std::size_t netCount() const { return netWidths_.size(); }

  NetId addInput(const std::string& name, unsigned width);
  void addOutput(const std::string& name, NetId net);

  struct PortRef {
    std::string name;
    NetId net;
  };
  const std::vector<PortRef>& inputs() const { return inputs_; }
  const std::vector<PortRef>& outputs() const { return outputs_; }
  NetId findInput(const std::string& name) const;
  NetId findOutput(const std::string& name) const;

  // ----- combinational builder helpers ------------------------------------
  NetId constant(const bv::BitVector& v);
  NetId constantUint(unsigned width, std::uint64_t v) {
    return constant(bv::BitVector::fromUint(width, v));
  }
  NetId opAdd(NetId a, NetId b) { return binary(ir::Op::kAdd, a, b); }
  NetId opSub(NetId a, NetId b) { return binary(ir::Op::kSub, a, b); }
  NetId opMul(NetId a, NetId b) { return binary(ir::Op::kMul, a, b); }
  NetId opUDiv(NetId a, NetId b) { return binary(ir::Op::kUDiv, a, b); }
  NetId opURem(NetId a, NetId b) { return binary(ir::Op::kURem, a, b); }
  NetId opSDiv(NetId a, NetId b) { return binary(ir::Op::kSDiv, a, b); }
  NetId opSRem(NetId a, NetId b) { return binary(ir::Op::kSRem, a, b); }
  NetId opAnd(NetId a, NetId b) { return binary(ir::Op::kAnd, a, b); }
  NetId opOr(NetId a, NetId b) { return binary(ir::Op::kOr, a, b); }
  NetId opXor(NetId a, NetId b) { return binary(ir::Op::kXor, a, b); }
  NetId opNot(NetId a) { return unary(ir::Op::kNot, a); }
  NetId opNeg(NetId a) { return unary(ir::Op::kNeg, a); }
  NetId opShl(NetId a, NetId amt) { return shiftOp(ir::Op::kShl, a, amt); }
  NetId opLShr(NetId a, NetId amt) { return shiftOp(ir::Op::kLShr, a, amt); }
  NetId opAShr(NetId a, NetId amt) { return shiftOp(ir::Op::kAShr, a, amt); }
  NetId opEq(NetId a, NetId b) { return compareOp(ir::Op::kEq, a, b); }
  NetId opNe(NetId a, NetId b) { return compareOp(ir::Op::kNe, a, b); }
  NetId opULt(NetId a, NetId b) { return compareOp(ir::Op::kULt, a, b); }
  NetId opULe(NetId a, NetId b) { return compareOp(ir::Op::kULe, a, b); }
  NetId opSLt(NetId a, NetId b) { return compareOp(ir::Op::kSLt, a, b); }
  NetId opSLe(NetId a, NetId b) { return compareOp(ir::Op::kSLe, a, b); }
  NetId opMux(NetId sel, NetId thenN, NetId elseN);
  NetId opConcat(NetId hi, NetId lo);
  NetId opExtract(NetId a, unsigned hi, unsigned lo);
  NetId opZExt(NetId a, unsigned newWidth);
  NetId opSExt(NetId a, unsigned newWidth);
  NetId opRedAnd(NetId a) { return reduceOp(ir::Op::kRedAnd, a); }
  NetId opRedOr(NetId a) { return reduceOp(ir::Op::kRedOr, a); }
  NetId opRedXor(NetId a) { return reduceOp(ir::Op::kRedXor, a); }
  /// Identity buffer (used when a port must alias an existing net).
  NetId opBuf(NetId a) { return unary(ir::Op::kZExt, a); }

  // ----- sequential builder helpers ---------------------------------------
  /// Creates a register; returns its q net.  d may be wired later via
  /// connectDff (registers often feed logic that feeds them back).
  NetId addDff(const std::string& name, unsigned width,
               const bv::BitVector& resetValue, NetId d = kNoNet,
               NetId enable = kNoNet, NetId syncReset = kNoNet);
  NetId addDff(const std::string& name, unsigned width, std::uint64_t reset,
               NetId d = kNoNet, NetId enable = kNoNet,
               NetId syncReset = kNoNet) {
    return addDff(name, width, bv::BitVector::fromUint(width, reset), d,
                  enable, syncReset);
  }
  /// Sets the d (and optionally enable/syncReset) of a register by q net.
  void connectDff(NetId q, NetId d, NetId enable = kNoNet,
                  NetId syncReset = kNoNet);

  /// Creates a memory; read/write ports are added on the returned handle via
  /// the mem* helpers below.
  std::size_t addMemory(const std::string& name, unsigned width,
                        unsigned depth, std::vector<bv::BitVector> init = {});
  /// Adds a synchronous read port; returns the registered read-data net.
  NetId memReadPort(std::size_t memIdx, NetId addr);
  void memWritePort(std::size_t memIdx, NetId enable, NetId addr, NetId data);

  // ----- hierarchy ---------------------------------------------------------
  /// Instantiates `sub` with a by-name binding of every port to a net of
  /// this module.  All ports must be bound.
  void addInstance(const std::string& name, const Module& sub,
                   std::map<std::string, NetId> portMap);

  const std::vector<Cell>& cells() const { return cells_; }
  /// Replaces cell `idx` (used by the mutation tooling, rtl/mutate.h).
  /// The replacement must drive the same output net at the same width.
  void replaceCell(std::size_t idx, Cell replacement);
  const std::vector<Dff>& dffs() const { return dffs_; }
  const std::vector<Memory>& memories() const { return memories_; }
  const std::vector<Instance>& instances() const { return instances_; }

  /// True when the module has no submodule instances.
  bool isFlat() const { return instances_.empty(); }

  /// Returns a flattened copy: every instance recursively inlined, child net
  /// names prefixed "instname.".
  Module flatten() const;

  /// Structural sanity: every net single-driven, dffs fully connected,
  /// no undriven non-input nets feeding logic.
  void validate() const;

  /// Total cell+dff count after flattening (a crude size metric).
  std::size_t flatSizeEstimate() const;

 private:
  NetId unary(ir::Op op, NetId a);
  NetId binary(ir::Op op, NetId a, NetId b);
  NetId compareOp(ir::Op op, NetId a, NetId b);
  NetId shiftOp(ir::Op op, NetId a, NetId amt);
  NetId reduceOp(ir::Op op, NetId a);
  void checkNet(NetId n) const {
    DFV_CHECK_MSG(n < netWidths_.size(), "invalid net id " << n);
  }
  NetId emitCell(Cell c);
  void flattenInto(Module& flat, const std::string& prefix,
                   const std::map<std::string, NetId>& portMap) const;

  std::string name_;
  std::vector<unsigned> netWidths_;
  std::vector<std::string> netNames_;
  std::vector<PortRef> inputs_;
  std::vector<PortRef> outputs_;
  std::vector<Cell> cells_;
  std::vector<Dff> dffs_;
  std::vector<Memory> memories_;
  std::vector<Instance> instances_;
};

/// A combinational cycle through a module's cells: `cells` holds the cell
/// indices on the loop in feed order (each cell's output net is an input of
/// the next; the last feeds the first).  Produced by findCombinationalCycle
/// so levelization failures and the DRC can report the complete path rather
/// than a single net name.
struct CombCycle {
  std::vector<std::size_t> cells;

  /// "net 'a' (add) -> net 'b' (mux) -> net 'a'" — the full loop.
  std::string describe(const Module& m) const;
};

/// Finds one combinational cycle among `m`'s cells (the module is analyzed
/// as-is; flatten first for hierarchical designs).  Returns nullopt when the
/// cells levelize, i.e. the module is simulable.
std::optional<CombCycle> findCombinationalCycle(const Module& m);

}  // namespace dfv::rtl
