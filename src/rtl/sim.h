// Cycle-accurate RTL simulation.
//
// Two-phase semantics per cycle, the standard synchronous-logic contract:
//   1. evalCombinational(): with the current inputs and register/memory
//      outputs, every combinational cell is evaluated once in levelized
//      (topological) order;
//   2. clockEdge(): every DFF captures its d, every memory write commits and
//      every memory read port registers the addressed element.
// Memory ports are read-before-write: a read of an address written in the
// same cycle returns the old contents.
//
// Combinational cycles are rejected at construction.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.h"
#include "rtl/netlist.h"

namespace dfv::rtl {

/// Levelized, cycle-accurate simulator for a (flattened) Module.
class Simulator {
 public:
  /// Flattens `m` if it has instances.  Throws on combinational loops or
  /// structural problems.
  explicit Simulator(const Module& m);

  const Module& module() const { return flat_; }

  /// Registers to reset values, memories to init contents, cycle counter 0.
  void reset();

  /// Drives an input port for the current cycle.
  void setInput(const std::string& name, const bv::BitVector& v);
  void setInputUint(const std::string& name, std::uint64_t v);

  /// Evaluates all combinational logic with the current inputs and state.
  void evalCombinational();

  /// Commits registers and memories (call after evalCombinational).
  void clockEdge();

  /// setInputs + evalCombinational + read outputs + clockEdge, in one call.
  std::unordered_map<std::string, bv::BitVector> step(
      const std::unordered_map<std::string, bv::BitVector>& inputs);

  /// Value of any net (valid after evalCombinational in this cycle).
  const bv::BitVector& netValue(NetId n) const {
    DFV_CHECK(n < values_.size());
    return values_[n];
  }
  const bv::BitVector& outputValue(const std::string& name) const;

  /// Direct access to a memory's contents (e.g. preloading test state).
  std::vector<bv::BitVector>& memoryContents(std::size_t memIdx);

  std::uint64_t cycle() const { return cycle_; }

  /// Records the value of `net` after every evalCombinational call.
  void watch(NetId net) { watched_.push_back(net); }
  const std::vector<std::vector<bv::BitVector>>& watchHistory() const {
    return watchHistory_;
  }

 private:
  void levelize();

  Module flat_;
  std::vector<bv::BitVector> values_;          // per net
  std::vector<std::size_t> cellOrder_;         // levelized cell indices
  std::vector<std::vector<bv::BitVector>> memData_;  // per memory
  std::vector<bv::BitVector> dffNext_;         // scratch, per dff
  std::uint64_t cycle_ = 0;
  bool combEvaluated_ = false;
  std::vector<NetId> watched_;
  std::vector<std::vector<bv::BitVector>> watchHistory_;
};

}  // namespace dfv::rtl
