#include "rtl/lower.h"

#include <unordered_map>
#include <vector>

namespace dfv::rtl {

namespace {

/// Builds net expressions on demand, memoized per net.
class NetLowering {
 public:
  NetLowering(const Module& m, ir::Context& ctx) : m_(m), ctx_(ctx) {
    exprs_.assign(m.netCount(), nullptr);
    for (std::size_t i = 0; i < m.cells().size(); ++i)
      driverCell_[m.cells()[i].output] = i;
  }

  void bind(NetId n, ir::NodeRef e) { exprs_[n] = e; }

  ir::NodeRef expr(NetId n) {
    DFV_CHECK(n != kNoNet);
    if (exprs_[n] != nullptr) return exprs_[n];
    auto it = driverCell_.find(n);
    DFV_CHECK_MSG(it != driverCell_.end(),
                  "net '" << m_.netName(n) << "' is undriven");
    exprs_[n] = lowerCell(m_.cells()[it->second]);
    return exprs_[n];
  }

 private:
  ir::NodeRef lowerCell(const Cell& c) {
    ir::Context& x = ctx_;
    auto in = [&](unsigned i) { return expr(c.inputs[i]); };
    switch (c.op) {
      case ir::Op::kConst: return x.constant(c.constVal);
      case ir::Op::kAdd: return x.add(in(0), in(1));
      case ir::Op::kSub: return x.sub(in(0), in(1));
      case ir::Op::kMul: return x.mul(in(0), in(1));
      case ir::Op::kUDiv: return x.udiv(in(0), in(1));
      case ir::Op::kURem: return x.urem(in(0), in(1));
      case ir::Op::kSDiv: return x.sdiv(in(0), in(1));
      case ir::Op::kSRem: return x.srem(in(0), in(1));
      case ir::Op::kNeg: return x.neg(in(0));
      case ir::Op::kAnd: return x.bitAnd(in(0), in(1));
      case ir::Op::kOr: return x.bitOr(in(0), in(1));
      case ir::Op::kXor: return x.bitXor(in(0), in(1));
      case ir::Op::kNot: return x.bitNot(in(0));
      case ir::Op::kShl: return x.shl(in(0), in(1));
      case ir::Op::kLShr: return x.lshr(in(0), in(1));
      case ir::Op::kAShr: return x.ashr(in(0), in(1));
      case ir::Op::kEq: return x.eq(in(0), in(1));
      case ir::Op::kNe: return x.ne(in(0), in(1));
      case ir::Op::kULt: return x.ult(in(0), in(1));
      case ir::Op::kULe: return x.ule(in(0), in(1));
      case ir::Op::kSLt: return x.slt(in(0), in(1));
      case ir::Op::kSLe: return x.sle(in(0), in(1));
      case ir::Op::kMux: return x.mux(in(0), in(1), in(2));
      case ir::Op::kConcat: return x.concat(in(0), in(1));
      case ir::Op::kExtract: return x.extract(in(0), c.attr0, c.attr1);
      case ir::Op::kZExt: return x.zext(in(0), c.attr0);
      case ir::Op::kSExt: return x.sext(in(0), c.attr0);
      case ir::Op::kRedAnd: return x.redAnd(in(0));
      case ir::Op::kRedOr: return x.redOr(in(0));
      case ir::Op::kRedXor: return x.redXor(in(0));
      default:
        DFV_UNREACHABLE("op " << ir::opName(c.op) << " is not a valid cell");
    }
  }

  const Module& m_;
  ir::Context& ctx_;
  std::vector<ir::NodeRef> exprs_;
  std::unordered_map<NetId, std::size_t> driverCell_;
};

}  // namespace

ir::TransitionSystem lowerToTransitionSystem(const Module& module,
                                             ir::Context& ctx,
                                             const std::string& prefix) {
  const Module flat = module.isFlat() ? module : module.flatten();
  flat.validate();
  ir::TransitionSystem ts(ctx, prefix.empty() ? flat.name() : prefix);
  NetLowering nets(flat, ctx);

  // Leaves: inputs, register outputs, memory arrays + registered read data.
  for (const auto& p : flat.inputs())
    nets.bind(p.net, ts.addInput(prefix + p.name, flat.netWidth(p.net)));

  for (const auto& f : flat.dffs()) {
    ir::NodeRef q = ts.addState(prefix + f.name, ir::Type{flat.netWidth(f.q), 0},
                                ir::Value(f.resetValue));
    nets.bind(f.q, q);
  }

  struct MemLeaf {
    ir::NodeRef array;
    std::vector<ir::NodeRef> readData;
  };
  std::vector<MemLeaf> memLeaves;
  for (const auto& m : flat.memories()) {
    MemLeaf leaf;
    ir::Value init =
        m.init.empty()
            ? ir::Value::filledArray(m.width, m.depth, bv::BitVector(m.width))
            : ir::Value::makeArray(m.init);
    leaf.array = ts.addState(prefix + m.name, ir::Type{m.width, m.depth},
                             std::move(init));
    for (std::size_t rp = 0; rp < m.readPorts.size(); ++rp) {
      ir::NodeRef dataReg = ts.addState(
          prefix + m.name + ".rdata" + std::to_string(rp),
          ir::Type{m.width, 0}, ir::Value(bv::BitVector(m.width)));
      nets.bind(m.readPorts[rp].data, dataReg);
      leaf.readData.push_back(dataReg);
    }
    memLeaves.push_back(leaf);
  }

  // Next-state functions.
  for (const auto& f : flat.dffs()) {
    ir::NodeRef next = nets.expr(f.d);
    if (f.enable != kNoNet)
      next = ctx.mux(nets.expr(f.enable), next, nets.expr(f.q));
    if (f.syncReset != kNoNet)
      next = ctx.mux(nets.expr(f.syncReset), ctx.constant(f.resetValue), next);
    ts.setNext(nets.expr(f.q), next);
  }
  for (std::size_t mi = 0; mi < flat.memories().size(); ++mi) {
    const Memory& m = flat.memories()[mi];
    const MemLeaf& leaf = memLeaves[mi];
    // Read-before-write: read data registers sample the *current* array.
    for (std::size_t rp = 0; rp < m.readPorts.size(); ++rp)
      ts.setNext(leaf.readData[rp],
                 ctx.arrayRead(leaf.array, nets.expr(m.readPorts[rp].addr)));
    ir::NodeRef nextArray = leaf.array;
    for (const auto& wp : m.writePorts) {
      ir::NodeRef written =
          ctx.arrayWrite(nextArray, nets.expr(wp.addr), nets.expr(wp.data));
      nextArray = ctx.mux(nets.expr(wp.enable), written, nextArray);
    }
    ts.setNext(leaf.array, nextArray);
  }

  for (const auto& p : flat.outputs())
    ts.addOutput(p.name, nets.expr(p.net));

  ts.validate();
  return ts;
}

}  // namespace dfv::rtl
