#include "rtl/vcd.h"

#include <algorithm>

namespace dfv::rtl {

VcdWriter::VcdWriter(Simulator& sim, std::ostream& out,
                     unsigned timescalePsPerCycle)
    : sim_(sim), out_(out), timescale_(timescalePsPerCycle) {
  DFV_CHECK_MSG(timescalePsPerCycle >= 1, "timescale must be >= 1ps");
}

void VcdWriter::addNet(NetId net) {
  DFV_CHECK_MSG(!headerWritten_, "addNet after the header was written");
  DFV_CHECK_MSG(net < sim_.module().netCount(), "invalid net");
  if (std::find(nets_.begin(), nets_.end(), net) == nets_.end())
    nets_.push_back(net);
}

void VcdWriter::addAllNamedNets() {
  const Module& m = sim_.module();
  for (NetId n = 0; n < m.netCount(); ++n) {
    const std::string& name = m.netName(n);
    // Auto-generated names are "n<id>"; everything else was user-named.
    if (name.size() > 1 && name[0] == 'n' &&
        name.find_first_not_of("0123456789", 1) == std::string::npos)
      continue;
    addNet(n);
  }
}

std::string VcdWriter::idCode(std::size_t index) {
  // Printable-ASCII identifier codes, base 94 starting at '!'.
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

void VcdWriter::writeHeader() {
  DFV_CHECK_MSG(!headerWritten_, "header already written");
  DFV_CHECK_MSG(!nets_.empty(), "no nets selected for tracing");
  out_ << "$date DFV trace $end\n";
  out_ << "$version dfv::rtl::VcdWriter $end\n";
  out_ << "$timescale 1ps $end\n";
  out_ << "$scope module " << sim_.module().name() << " $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const NetId n = nets_[i];
    std::string name = sim_.module().netName(n);
    std::replace(name.begin(), name.end(), ' ', '_');
    out_ << "$var wire " << sim_.module().netWidth(n) << ' ' << idCode(i)
         << ' ' << name;
    if (sim_.module().netWidth(n) > 1)
      out_ << " [" << sim_.module().netWidth(n) - 1 << ":0]";
    out_ << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  headerWritten_ = true;
  last_.assign(nets_.size(), bv::BitVector(1));
}

void VcdWriter::sample() {
  if (!headerWritten_) writeHeader();
  bool timeEmitted = false;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const bv::BitVector& v = sim_.netValue(nets_[i]);
    if (sampleIndex_ != 0 && v == last_[i]) continue;
    if (!timeEmitted) {
      out_ << '#' << sampleIndex_ * timescale_ << '\n';
      timeEmitted = true;
    }
    if (v.width() == 1) {
      out_ << (v.bit(0) ? '1' : '0') << idCode(i) << '\n';
    } else {
      out_ << 'b';
      for (unsigned bit = v.width(); bit-- > 0;)
        out_ << (v.bit(bit) ? '1' : '0');
      out_ << ' ' << idCode(i) << '\n';
    }
    last_[i] = v;
  }
  ++sampleIndex_;
}

}  // namespace dfv::rtl
