// VCD (Value Change Dump) waveform tracing for the RTL simulator.
//
// Debugging an SLM/RTL divergence ends in waveforms; this writer produces
// standard IEEE-1364 VCD that any viewer (GTKWave etc.) opens.  Attach a
// VcdWriter to a Simulator, choose nets (or trace everything), and call
// sample() once per cycle after evalCombinational().
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rtl/sim.h"

namespace dfv::rtl {

/// Streams value changes of selected nets to a VCD file.
class VcdWriter {
 public:
  /// `timescalePsPerCycle`: VCD time units per simulated cycle.
  VcdWriter(Simulator& sim, std::ostream& out,
            unsigned timescalePsPerCycle = 1000);

  /// Adds one net to the trace set (before the first sample()).
  void addNet(NetId net);
  /// Adds every named net (ports, registers, memory read data).
  void addAllNamedNets();

  /// Writes the header (automatic on first sample()).
  void writeHeader();

  /// Records the current values; call after evalCombinational().
  void sample();

  std::size_t netCount() const { return nets_.size(); }

 private:
  static std::string idCode(std::size_t index);

  Simulator& sim_;
  std::ostream& out_;
  unsigned timescale_;
  bool headerWritten_ = false;
  std::vector<NetId> nets_;
  std::vector<bv::BitVector> last_;
  std::uint64_t sampleIndex_ = 0;
};

}  // namespace dfv::rtl
