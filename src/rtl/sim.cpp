#include "rtl/sim.h"

#include <algorithm>

namespace dfv::rtl {

Simulator::Simulator(const Module& m) : flat_(m.isFlat() ? m : m.flatten()) {
  flat_.validate();
  values_.assign(flat_.netCount(), bv::BitVector(1));
  for (NetId n = 0; n < flat_.netCount(); ++n)
    values_[n] = bv::BitVector(flat_.netWidth(n));
  levelize();
  reset();
}

void Simulator::levelize() {
  // Kahn's algorithm over combinational cells.  Sequential outputs (dff q,
  // memory read data) and inputs are sources.
  const auto& cells = flat_.cells();
  // net -> driving cell index (or none for sequential/input-driven nets).
  std::vector<std::size_t> driverCell(flat_.netCount(), SIZE_MAX);
  for (std::size_t i = 0; i < cells.size(); ++i)
    driverCell[cells[i].output] = i;

  std::vector<unsigned> pendingInputs(cells.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (NetId in : cells[i].inputs) {
      const std::size_t drv = driverCell[in];
      if (drv != SIZE_MAX) {
        ++pendingInputs[i];
        consumers[drv].push_back(i);
      }
    }
  }
  cellOrder_.clear();
  cellOrder_.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (pendingInputs[i] == 0) cellOrder_.push_back(i);
  for (std::size_t head = 0; head < cellOrder_.size(); ++head) {
    for (std::size_t next : consumers[cellOrder_[head]])
      if (--pendingInputs[next] == 0) cellOrder_.push_back(next);
  }
  if (cellOrder_.size() != cells.size()) {
    // Report the complete loop, not just one net on it.
    const auto cycle = findCombinationalCycle(flat_);
    DFV_CHECK(cycle.has_value());
    DFV_CHECK_MSG(false, "combinational cycle: " << cycle->describe(flat_));
  }
}

void Simulator::reset() {
  cycle_ = 0;
  combEvaluated_ = false;
  watchHistory_.clear();
  for (std::size_t i = 0; i < flat_.dffs().size(); ++i)
    values_[flat_.dffs()[i].q] = flat_.dffs()[i].resetValue;
  memData_.clear();
  for (const auto& m : flat_.memories()) {
    if (m.init.empty())
      memData_.emplace_back(m.depth, bv::BitVector(m.width));
    else
      memData_.push_back(m.init);
    for (const auto& rp : m.readPorts)
      values_[rp.data] = bv::BitVector(m.width);
  }
}

void Simulator::setInput(const std::string& name, const bv::BitVector& v) {
  const NetId n = flat_.findInput(name);
  DFV_CHECK_MSG(n != kNoNet, "no input named '" << name << "'");
  DFV_CHECK_MSG(v.width() == flat_.netWidth(n),
                "input '" << name << "' width " << flat_.netWidth(n)
                          << ", got " << v.width());
  values_[n] = v;
  combEvaluated_ = false;
}

void Simulator::setInputUint(const std::string& name, std::uint64_t v) {
  const NetId n = flat_.findInput(name);
  DFV_CHECK_MSG(n != kNoNet, "no input named '" << name << "'");
  setInput(name, bv::BitVector::fromUint(flat_.netWidth(n), v));
}

void Simulator::evalCombinational() {
  using bv::BitVector;
  const auto& cells = flat_.cells();
  for (std::size_t idx : cellOrder_) {
    const Cell& c = cells[idx];
    auto in = [&](unsigned i) -> const BitVector& {
      return values_[c.inputs[i]];
    };
    BitVector out;
    auto b2v = [](bool b) { return BitVector::fromUint(1, b); };
    switch (c.op) {
      case ir::Op::kConst: out = c.constVal; break;
      case ir::Op::kAdd: out = in(0) + in(1); break;
      case ir::Op::kSub: out = in(0) - in(1); break;
      case ir::Op::kMul: out = in(0) * in(1); break;
      case ir::Op::kUDiv: out = in(0).udiv(in(1)); break;
      case ir::Op::kURem: out = in(0).urem(in(1)); break;
      case ir::Op::kSDiv: out = in(0).sdiv(in(1)); break;
      case ir::Op::kSRem: out = in(0).srem(in(1)); break;
      case ir::Op::kNeg: out = in(0).neg(); break;
      case ir::Op::kAnd: out = in(0) & in(1); break;
      case ir::Op::kOr: out = in(0) | in(1); break;
      case ir::Op::kXor: out = in(0) ^ in(1); break;
      case ir::Op::kNot: out = ~in(0); break;
      case ir::Op::kShl: out = in(0).shl(in(1)); break;
      case ir::Op::kLShr: out = in(0).lshr(in(1)); break;
      case ir::Op::kAShr: out = in(0).ashr(in(1)); break;
      case ir::Op::kEq: out = b2v(in(0) == in(1)); break;
      case ir::Op::kNe: out = b2v(in(0) != in(1)); break;
      case ir::Op::kULt: out = b2v(in(0).ult(in(1))); break;
      case ir::Op::kULe: out = b2v(in(0).ule(in(1))); break;
      case ir::Op::kSLt: out = b2v(in(0).slt(in(1))); break;
      case ir::Op::kSLe: out = b2v(in(0).sle(in(1))); break;
      case ir::Op::kMux: out = in(0).isZero() ? in(2) : in(1); break;
      case ir::Op::kConcat: out = BitVector::concat(in(0), in(1)); break;
      case ir::Op::kExtract: out = in(0).extract(c.attr0, c.attr1); break;
      case ir::Op::kZExt: out = in(0).zext(c.attr0); break;
      case ir::Op::kSExt: out = in(0).sext(c.attr0); break;
      case ir::Op::kRedAnd: out = b2v(in(0).reduceAnd()); break;
      case ir::Op::kRedOr: out = b2v(in(0).reduceOr()); break;
      case ir::Op::kRedXor: out = b2v(in(0).reduceXor()); break;
      default:
        DFV_UNREACHABLE("op " << ir::opName(c.op) << " is not a valid cell");
    }
    values_[c.output] = std::move(out);
  }
  combEvaluated_ = true;
  if (!watched_.empty()) {
    std::vector<bv::BitVector> snap;
    snap.reserve(watched_.size());
    for (NetId n : watched_) snap.push_back(values_[n]);
    watchHistory_.push_back(std::move(snap));
  }
}

void Simulator::clockEdge() {
  DFV_CHECK_MSG(combEvaluated_,
                "clockEdge before evalCombinational in this cycle");
  // Capture all register inputs first (simultaneous update).
  const auto& dffs = flat_.dffs();
  dffNext_.resize(dffs.size(), bv::BitVector(1));
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Dff& f = dffs[i];
    if (f.syncReset != kNoNet && !values_[f.syncReset].isZero()) {
      dffNext_[i] = f.resetValue;
    } else if (f.enable == kNoNet || !values_[f.enable].isZero()) {
      dffNext_[i] = values_[f.d];
    } else {
      dffNext_[i] = values_[f.q];
    }
  }
  // Memories: register read data (old contents), then commit writes.
  for (std::size_t mi = 0; mi < flat_.memories().size(); ++mi) {
    const Memory& m = flat_.memories()[mi];
    auto& data = memData_[mi];
    for (const auto& rp : m.readPorts) {
      const std::uint64_t addr = values_[rp.addr].toUint64();
      values_[rp.data] = addr < m.depth ? data[addr] : data[0];
    }
    for (const auto& wp : m.writePorts) {
      if (!values_[wp.enable].isZero()) {
        const std::uint64_t addr = values_[wp.addr].toUint64();
        if (addr < m.depth) data[addr] = values_[wp.data];
      }
    }
  }
  for (std::size_t i = 0; i < dffs.size(); ++i)
    values_[dffs[i].q] = dffNext_[i];
  ++cycle_;
  combEvaluated_ = false;
}

std::unordered_map<std::string, bv::BitVector> Simulator::step(
    const std::unordered_map<std::string, bv::BitVector>& inputs) {
  for (const auto& [name, v] : inputs) setInput(name, v);
  evalCombinational();
  std::unordered_map<std::string, bv::BitVector> out;
  for (const auto& p : flat_.outputs()) out.emplace(p.name, values_[p.net]);
  clockEdge();
  return out;
}

const bv::BitVector& Simulator::outputValue(const std::string& name) const {
  const NetId n = flat_.findOutput(name);
  DFV_CHECK_MSG(n != kNoNet, "no output named '" << name << "'");
  return values_[n];
}

std::vector<bv::BitVector>& Simulator::memoryContents(std::size_t memIdx) {
  DFV_CHECK(memIdx < memData_.size());
  return memData_[memIdx];
}

}  // namespace dfv::rtl
