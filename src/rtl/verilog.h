// Verilog-2001 emission for RTL netlists.
//
// Makes DFV designs portable to standard EDA flows: a (flattened) Module is
// emitted as a single synthesizable Verilog module.  The implicit clock
// becomes an explicit `clk` input and the power-on register values become a
// synchronous `rst` input (assert for one cycle after power-up to match the
// DFV simulator's reset state).
//
// Semantic deltas (documented, inherent to 4-state Verilog):
//   * division/remainder by zero produce X in Verilog, all-ones/dividend in
//     DFV (SMT-LIB convention);
//   * out-of-range memory indexing produces X in Verilog, element 0 in DFV.
// Neither is reachable in a design that guards its divisors and indices.
#pragma once

#include <string>

#include "rtl/netlist.h"

namespace dfv::rtl {

/// Emits `m` (flattened automatically) as a synthesizable Verilog module.
std::string emitVerilog(const Module& m);

}  // namespace dfv::rtl
