#include "rtl/mutate.h"

#include <sstream>

namespace dfv::rtl {

namespace {

/// An applicable mutation site: cell index + which edit to apply there.
struct Site {
  std::size_t cell;
  enum class Kind {
    kSwapOp,        ///< add<->sub, and<->or, ult<->ule, slt<->sle, eq<->ne
    kFlipConstBit,  ///< invert bit 0 of a constant
    kInvertMuxSel,  ///< swap the mux branches
    kShiftKind,     ///< lshr <-> ashr
  } kind;
};

std::optional<ir::Op> swappedOp(ir::Op op) {
  switch (op) {
    case ir::Op::kAdd: return ir::Op::kSub;
    case ir::Op::kSub: return ir::Op::kAdd;
    case ir::Op::kAnd: return ir::Op::kOr;
    case ir::Op::kOr: return ir::Op::kAnd;
    case ir::Op::kXor: return ir::Op::kOr;
    case ir::Op::kULt: return ir::Op::kULe;
    case ir::Op::kULe: return ir::Op::kULt;
    case ir::Op::kSLt: return ir::Op::kSLe;
    case ir::Op::kSLe: return ir::Op::kSLt;
    case ir::Op::kEq: return ir::Op::kNe;
    case ir::Op::kNe: return ir::Op::kEq;
    default: return std::nullopt;
  }
}

std::vector<Site> enumerateSites(const Module& m) {
  std::vector<Site> sites;
  for (std::size_t i = 0; i < m.cells().size(); ++i) {
    const Cell& c = m.cells()[i];
    if (swappedOp(c.op).has_value())
      sites.push_back(Site{i, Site::Kind::kSwapOp});
    if (c.op == ir::Op::kConst)
      sites.push_back(Site{i, Site::Kind::kFlipConstBit});
    if (c.op == ir::Op::kMux)
      sites.push_back(Site{i, Site::Kind::kInvertMuxSel});
    if (c.op == ir::Op::kLShr || c.op == ir::Op::kAShr)
      sites.push_back(Site{i, Site::Kind::kShiftKind});
  }
  return sites;
}

}  // namespace

std::size_t countMutationSites(const Module& m) {
  return enumerateSites(m).size();
}

std::optional<Mutation> mutate(const Module& m, std::size_t index) {
  const std::vector<Site> sites = enumerateSites(m);
  if (index >= sites.size()) return std::nullopt;
  const Site& site = sites[index];
  Mutation result{m, ""};
  Cell c = m.cells()[site.cell];
  std::ostringstream desc;
  desc << "cell#" << site.cell << " (" << ir::opName(c.op) << " -> ";
  switch (site.kind) {
    case Site::Kind::kSwapOp:
      c.op = *swappedOp(c.op);
      desc << ir::opName(c.op) << ")";
      break;
    case Site::Kind::kFlipConstBit: {
      bv::BitVector v = c.constVal;
      v.setBit(0, !v.bit(0));
      desc << "const bit0 flipped: " << c.constVal.toString(16) << " -> "
           << v.toString(16) << ")";
      c.constVal = std::move(v);
      break;
    }
    case Site::Kind::kInvertMuxSel:
      std::swap(c.inputs[1], c.inputs[2]);
      desc << "mux branches swapped)";
      break;
    case Site::Kind::kShiftKind:
      c.op = c.op == ir::Op::kLShr ? ir::Op::kAShr : ir::Op::kLShr;
      desc << ir::opName(c.op) << ")";
      break;
  }
  result.module.replaceCell(site.cell, std::move(c));
  result.description = desc.str();
  return result;
}

}  // namespace dfv::rtl
