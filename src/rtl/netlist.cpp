#include "rtl/netlist.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dfv::rtl {

NetId Module::addNet(unsigned width, std::string name) {
  DFV_CHECK_MSG(width >= 1, "net width must be >= 1");
  const NetId id = static_cast<NetId>(netWidths_.size());
  netWidths_.push_back(width);
  netNames_.push_back(name.empty() ? "n" + std::to_string(id)
                                   : std::move(name));
  return id;
}

NetId Module::addInput(const std::string& name, unsigned width) {
  DFV_CHECK_MSG(findInput(name) == kNoNet,
                "input '" << name << "' already declared");
  const NetId n = addNet(width, name);
  inputs_.push_back(PortRef{name, n});
  return n;
}

void Module::addOutput(const std::string& name, NetId net) {
  checkNet(net);
  DFV_CHECK_MSG(findOutput(name) == kNoNet,
                "output '" << name << "' already declared");
  outputs_.push_back(PortRef{name, net});
}

NetId Module::findInput(const std::string& name) const {
  for (const auto& p : inputs_)
    if (p.name == name) return p.net;
  return kNoNet;
}

NetId Module::findOutput(const std::string& name) const {
  for (const auto& p : outputs_)
    if (p.name == name) return p.net;
  return kNoNet;
}

NetId Module::emitCell(Cell c) {
  cells_.push_back(std::move(c));
  return cells_.back().output;
}

NetId Module::constant(const bv::BitVector& v) {
  Cell c;
  c.op = ir::Op::kConst;
  c.constVal = v;
  c.output = addNet(v.width());
  return emitCell(std::move(c));
}

NetId Module::unary(ir::Op op, NetId a) {
  checkNet(a);
  Cell c;
  c.op = op;
  c.inputs = {a};
  if (op == ir::Op::kZExt || op == ir::Op::kSExt) c.attr0 = netWidth(a);
  c.output = addNet(netWidth(a));
  return emitCell(std::move(c));
}

NetId Module::binary(ir::Op op, NetId a, NetId b) {
  checkNet(a);
  checkNet(b);
  DFV_CHECK_MSG(netWidth(a) == netWidth(b),
                ir::opName(op) << " width mismatch: " << netWidth(a) << " vs "
                               << netWidth(b));
  Cell c;
  c.op = op;
  c.inputs = {a, b};
  c.output = addNet(netWidth(a));
  return emitCell(std::move(c));
}

NetId Module::compareOp(ir::Op op, NetId a, NetId b) {
  checkNet(a);
  checkNet(b);
  DFV_CHECK_MSG(netWidth(a) == netWidth(b), ir::opName(op) << " width mismatch");
  Cell c;
  c.op = op;
  c.inputs = {a, b};
  c.output = addNet(1);
  return emitCell(std::move(c));
}

NetId Module::shiftOp(ir::Op op, NetId a, NetId amt) {
  checkNet(a);
  checkNet(amt);
  Cell c;
  c.op = op;
  c.inputs = {a, amt};
  c.output = addNet(netWidth(a));
  return emitCell(std::move(c));
}

NetId Module::reduceOp(ir::Op op, NetId a) {
  checkNet(a);
  Cell c;
  c.op = op;
  c.inputs = {a};
  c.output = addNet(1);
  return emitCell(std::move(c));
}

NetId Module::opMux(NetId sel, NetId thenN, NetId elseN) {
  checkNet(sel);
  checkNet(thenN);
  checkNet(elseN);
  DFV_CHECK_MSG(netWidth(sel) == 1, "mux selector must be 1 bit");
  DFV_CHECK_MSG(netWidth(thenN) == netWidth(elseN), "mux width mismatch");
  Cell c;
  c.op = ir::Op::kMux;
  c.inputs = {sel, thenN, elseN};
  c.output = addNet(netWidth(thenN));
  return emitCell(std::move(c));
}

NetId Module::opConcat(NetId hi, NetId lo) {
  checkNet(hi);
  checkNet(lo);
  Cell c;
  c.op = ir::Op::kConcat;
  c.inputs = {hi, lo};
  c.output = addNet(netWidth(hi) + netWidth(lo));
  return emitCell(std::move(c));
}

NetId Module::opExtract(NetId a, unsigned hi, unsigned lo) {
  checkNet(a);
  DFV_CHECK_MSG(hi < netWidth(a) && lo <= hi,
                "extract [" << hi << ':' << lo << "] of width " << netWidth(a));
  Cell c;
  c.op = ir::Op::kExtract;
  c.inputs = {a};
  c.attr0 = hi;
  c.attr1 = lo;
  c.output = addNet(hi - lo + 1);
  return emitCell(std::move(c));
}

NetId Module::opZExt(NetId a, unsigned newWidth) {
  checkNet(a);
  DFV_CHECK_MSG(newWidth >= netWidth(a), "zext to narrower width");
  Cell c;
  c.op = ir::Op::kZExt;
  c.inputs = {a};
  c.attr0 = newWidth;
  c.output = addNet(newWidth);
  return emitCell(std::move(c));
}

NetId Module::opSExt(NetId a, unsigned newWidth) {
  checkNet(a);
  DFV_CHECK_MSG(newWidth >= netWidth(a), "sext to narrower width");
  Cell c;
  c.op = ir::Op::kSExt;
  c.inputs = {a};
  c.attr0 = newWidth;
  c.output = addNet(newWidth);
  return emitCell(std::move(c));
}

NetId Module::addDff(const std::string& name, unsigned width,
                     const bv::BitVector& resetValue, NetId d, NetId enable,
                     NetId syncReset) {
  DFV_CHECK_MSG(resetValue.width() == width, "reset value width mismatch");
  Dff ff;
  ff.name = name;
  ff.q = addNet(width, name);
  ff.resetValue = resetValue;
  dffs_.push_back(ff);
  const NetId q = dffs_.back().q;
  if (d != kNoNet || enable != kNoNet || syncReset != kNoNet)
    connectDff(q, d, enable, syncReset);
  return q;
}

void Module::connectDff(NetId q, NetId d, NetId enable, NetId syncReset) {
  auto it = std::find_if(dffs_.begin(), dffs_.end(),
                         [&](const Dff& f) { return f.q == q; });
  DFV_CHECK_MSG(it != dffs_.end(), "connectDff: net is not a register output");
  if (d != kNoNet) {
    checkNet(d);
    DFV_CHECK_MSG(netWidth(d) == netWidth(q), "dff d width mismatch");
    it->d = d;
  }
  if (enable != kNoNet) {
    checkNet(enable);
    DFV_CHECK_MSG(netWidth(enable) == 1, "dff enable must be 1 bit");
    it->enable = enable;
  }
  if (syncReset != kNoNet) {
    checkNet(syncReset);
    DFV_CHECK_MSG(netWidth(syncReset) == 1, "dff syncReset must be 1 bit");
    it->syncReset = syncReset;
  }
}

std::size_t Module::addMemory(const std::string& name, unsigned width,
                              unsigned depth,
                              std::vector<bv::BitVector> init) {
  DFV_CHECK_MSG(width >= 1 && depth >= 2, "memory must be >=2 deep");
  if (!init.empty()) {
    DFV_CHECK_MSG(init.size() == depth, "memory init size mismatch");
    for (const auto& v : init)
      DFV_CHECK_MSG(v.width() == width, "memory init width mismatch");
  }
  Memory m;
  m.name = name;
  m.width = width;
  m.depth = depth;
  m.init = std::move(init);
  memories_.push_back(std::move(m));
  return memories_.size() - 1;
}

NetId Module::memReadPort(std::size_t memIdx, NetId addr) {
  DFV_CHECK(memIdx < memories_.size());
  Memory& m = memories_[memIdx];
  checkNet(addr);
  DFV_CHECK_MSG(netWidth(addr) == m.addrWidth(),
                "read addr width " << netWidth(addr) << " != "
                                   << m.addrWidth());
  Memory::ReadPort rp;
  rp.addr = addr;
  rp.data = addNet(m.width, m.name + ".rdata" +
                                std::to_string(m.readPorts.size()));
  m.readPorts.push_back(rp);
  return rp.data;
}

void Module::memWritePort(std::size_t memIdx, NetId enable, NetId addr,
                          NetId data) {
  DFV_CHECK(memIdx < memories_.size());
  Memory& m = memories_[memIdx];
  checkNet(enable);
  checkNet(addr);
  checkNet(data);
  DFV_CHECK_MSG(netWidth(enable) == 1, "write enable must be 1 bit");
  DFV_CHECK_MSG(netWidth(addr) == m.addrWidth(), "write addr width mismatch");
  DFV_CHECK_MSG(netWidth(data) == m.width, "write data width mismatch");
  m.writePorts.push_back(Memory::WritePort{enable, addr, data});
}

void Module::replaceCell(std::size_t idx, Cell replacement) {
  DFV_CHECK(idx < cells_.size());
  DFV_CHECK_MSG(replacement.output == cells_[idx].output,
                "replacement must drive the same net");
  for (NetId in : replacement.inputs) checkNet(in);
  cells_[idx] = std::move(replacement);
}

void Module::addInstance(const std::string& name, const Module& sub,
                         std::map<std::string, NetId> portMap) {
  for (const auto& p : sub.inputs()) {
    auto it = portMap.find(p.name);
    DFV_CHECK_MSG(it != portMap.end(),
                  "instance '" << name << "': unbound input '" << p.name << "'");
    checkNet(it->second);
    DFV_CHECK_MSG(netWidth(it->second) == sub.netWidth(p.net),
                  "instance '" << name << "': width mismatch on '" << p.name
                               << "'");
  }
  for (const auto& p : sub.outputs()) {
    auto it = portMap.find(p.name);
    DFV_CHECK_MSG(it != portMap.end(), "instance '" << name
                                                    << "': unbound output '"
                                                    << p.name << "'");
    checkNet(it->second);
    DFV_CHECK_MSG(netWidth(it->second) == sub.netWidth(p.net),
                  "instance '" << name << "': width mismatch on '" << p.name
                               << "'");
  }
  DFV_CHECK_MSG(portMap.size() == sub.inputs().size() + sub.outputs().size(),
                "instance '" << name << "': extra bindings in port map");
  instances_.push_back(Instance{name, &sub, std::move(portMap)});
}

void Module::flattenInto(Module& flat, const std::string& prefix,
                         const std::map<std::string, NetId>& portMap) const {
  // Map from this module's net ids to the flat module's net ids.
  std::vector<NetId> netMap(netWidths_.size(), kNoNet);
  // Input ports alias the actual nets bound by the parent.
  for (const auto& p : inputs_) netMap[p.net] = portMap.at(p.name);
  // Every other net gets a fresh, prefixed net.
  for (NetId n = 0; n < netWidths_.size(); ++n) {
    if (netMap[n] == kNoNet)
      netMap[n] = flat.addNet(netWidths_[n], prefix + netNames_[n]);
  }
  auto mapNet = [&](NetId n) { return n == kNoNet ? kNoNet : netMap[n]; };

  for (const Cell& c : cells_) {
    Cell fc = c;
    for (NetId& n : fc.inputs) n = mapNet(n);
    fc.output = mapNet(fc.output);
    flat.cells_.push_back(std::move(fc));
  }
  for (const Dff& f : dffs_) {
    Dff ff = f;
    ff.name = prefix + f.name;
    ff.d = mapNet(f.d);
    ff.q = mapNet(f.q);
    ff.enable = mapNet(f.enable);
    ff.syncReset = mapNet(f.syncReset);
    flat.dffs_.push_back(std::move(ff));
  }
  for (const Memory& m : memories_) {
    Memory fm = m;
    fm.name = prefix + m.name;
    for (auto& rp : fm.readPorts) {
      rp.addr = mapNet(rp.addr);
      rp.data = mapNet(rp.data);
    }
    for (auto& wp : fm.writePorts) {
      wp.enable = mapNet(wp.enable);
      wp.addr = mapNet(wp.addr);
      wp.data = mapNet(wp.data);
    }
    flat.memories_.push_back(std::move(fm));
  }
  for (const Instance& inst : instances_) {
    std::map<std::string, NetId> childMap;
    for (const auto& [port, net] : inst.portMap)
      childMap.emplace(port, mapNet(net));
    inst.module->flattenInto(flat, prefix + inst.name + ".", childMap);
  }
  // Output ports: the parent bound a net for each; drive it with a buffer
  // from whatever drives the child's output net (the child side is netMap'd
  // already, so just connect with a buffer cell when ids differ).
  for (const auto& p : outputs_) {
    const NetId bound = portMap.at(p.name);
    const NetId inner = netMap[p.net];
    if (bound != inner) {
      Cell buf;
      buf.op = ir::Op::kZExt;
      buf.inputs = {inner};
      buf.attr0 = flat.netWidth(inner);
      buf.output = bound;
      flat.cells_.push_back(std::move(buf));
    }
  }
}

Module Module::flatten() const {
  if (isFlat()) return *this;
  Module flat(name_);
  std::map<std::string, NetId> topMap;
  for (const auto& p : inputs_) {
    const NetId n = flat.addInput(p.name, netWidths_[p.net]);
    topMap.emplace(p.name, n);
  }
  // Pre-create nets for top-level outputs so children can drive them.
  for (const auto& p : outputs_) {
    if (topMap.count(p.name) == 0)
      topMap.emplace(p.name, flat.addNet(netWidths_[p.net], p.name));
  }
  // Flatten self as if instantiated at top with that port map.  Output nets
  // of the top module may be internal nets; treat all outputs via the map.
  flattenInto(flat, "", topMap);
  for (const auto& p : outputs_) flat.addOutput(p.name, topMap.at(p.name));
  flat.validate();
  return flat;
}

void Module::validate() const {
  // Single-driver rule: each net driven by at most one of
  // {cell output, dff q, memory read data, input port}.
  std::vector<int> drivers(netWidths_.size(), 0);
  for (const auto& p : inputs_) drivers[p.net]++;
  for (const auto& c : cells_) drivers[c.output]++;
  for (const auto& f : dffs_) {
    drivers[f.q]++;
    DFV_CHECK_MSG(f.d != kNoNet, "register '" << f.name << "' has no d input");
  }
  for (const auto& m : memories_)
    for (const auto& rp : m.readPorts) drivers[rp.data]++;
  for (NetId n = 0; n < drivers.size(); ++n)
    DFV_CHECK_MSG(drivers[n] <= 1,
                  "net '" << netNames_[n] << "' has " << drivers[n]
                          << " drivers");
}

std::string CombCycle::describe(const Module& m) const {
  std::string out;
  for (std::size_t idx : cells) {
    const Cell& c = m.cells()[idx];
    out += "net '" + m.netName(c.output) + "' (" + ir::opName(c.op) + ") -> ";
  }
  if (!cells.empty())
    out += "net '" + m.netName(m.cells()[cells.front()].output) + "'";
  return out;
}

std::optional<CombCycle> findCombinationalCycle(const Module& m) {
  const auto& cells = m.cells();
  // net -> driving cell index (sequential/input-driven nets have none).
  std::vector<std::size_t> driverCell(m.netCount(), SIZE_MAX);
  for (std::size_t i = 0; i < cells.size(); ++i)
    driverCell[cells[i].output] = i;

  // Kahn levelization; cells left with pending inputs are on or behind a
  // cycle.
  std::vector<unsigned> pendingInputs(cells.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (NetId in : cells[i].inputs) {
      const std::size_t drv = driverCell[in];
      if (drv != SIZE_MAX) {
        ++pendingInputs[i];
        consumers[drv].push_back(i);
      }
    }
  }
  std::vector<std::size_t> order;
  order.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (pendingInputs[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (std::size_t next : consumers[order[head]])
      if (--pendingInputs[next] == 0) order.push_back(next);
  if (order.size() == cells.size()) return std::nullopt;

  // Walk backwards through unresolved cells (each has at least one
  // unresolved driver) until a cell repeats; the walk from the first repeat
  // is the cycle.  Reverse it so the reported order follows the data flow.
  std::size_t start = SIZE_MAX;
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (pendingInputs[i] != 0) { start = i; break; }
  DFV_CHECK(start != SIZE_MAX);
  std::vector<std::size_t> walk;
  std::vector<bool> onWalk(cells.size(), false);
  std::size_t cur = start;
  while (!onWalk[cur]) {
    onWalk[cur] = true;
    walk.push_back(cur);
    std::size_t next = SIZE_MAX;
    for (NetId in : cells[cur].inputs) {
      const std::size_t drv = driverCell[in];
      if (drv != SIZE_MAX && pendingInputs[drv] != 0) { next = drv; break; }
    }
    DFV_CHECK_MSG(next != SIZE_MAX, "unresolved cell with no unresolved driver");
    cur = next;
  }
  CombCycle cycle;
  for (std::size_t i = walk.size(); i-- > 0;) {
    cycle.cells.push_back(walk[i]);
    if (walk[i] == cur) break;
  }
  return cycle;
}

std::size_t Module::flatSizeEstimate() const {
  std::size_t total = cells_.size() + dffs_.size();
  for (const auto& inst : instances_) total += inst.module->flatSizeEstimate();
  return total;
}

}  // namespace dfv::rtl
