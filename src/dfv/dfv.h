// Umbrella header for the DFV library.
//
// DFV reproduces "Design for Verification in System-level Models and RTL"
// (Mathur & Krishnaswamy, DAC 2007): system-level modeling, RTL, and the
// two verification paths between them — co-simulation with transactors and
// sequential equivalence checking — plus the model-conditioning toolchain
// the paper's guidelines call for.
//
// Layer map (each usable on its own):
//   dfv::bv    — HDL-semantics bit-vectors and sized integers
//   dfv::ir    — word-level expression IR and transition systems
//   dfv::rtl   — structural netlists, cycle simulation, lowering
//   dfv::slm   — coroutine-based SystemC-like modeling kernel
//   dfv::sat   — CDCL SAT solver
//   dfv::absint — word-level known-bits/interval abstract interpretation
//   dfv::aig   — and-inverter graphs, CNF encoding, bit-blasting
//   dfv::sec   — transaction-based sequential equivalence checking
//   dfv::slice — induction-sound COI slicing, ternary eval, seq constants
//   dfv::inv   — Houdini-certified inductive invariants for SEC induction
//   dfv::fp    — IEEE-754 and simplified-hardware floating point
//   dfv::cosim — transactors, wrapped-RTL, timing-aligning scoreboards
//   dfv::slmc  — conditioned algorithmic models: interp, lint, elaborate
//   dfv::drc   — cross-layer design-rule checking and diagnostics
//   dfv::fault — deterministic fault injection for flow robustness tests
//   dfv::core  — verification plans with incremental re-verification,
//                DRC gating, resilient (retry/degrade) execution, and a
//                crash-durable write-ahead journal with resume
//   dfv::designs / dfv::workload — reference design pairs and stimulus
#pragma once

#include "absint/analysis.h"        // IWYU pragma: export
#include "absint/simplify.h"        // IWYU pragma: export
#include "aig/cnf.h"                // IWYU pragma: export
#include "aig/fraig.h"              // IWYU pragma: export
#include "aig/rewrite.h"            // IWYU pragma: export
#include "bitvec/bitvector.h"       // IWYU pragma: export
#include "bitvec/hdl_int.h"         // IWYU pragma: export
#include "core/journal.h"           // IWYU pragma: export
#include "core/parallel.h"          // IWYU pragma: export
#include "core/plan.h"              // IWYU pragma: export
#include "core/report.h"            // IWYU pragma: export
#include "core/resilient.h"         // IWYU pragma: export
#include "cosim/rtl_in_slm.h"       // IWYU pragma: export
#include "cosim/scoreboard.h"       // IWYU pragma: export
#include "cosim/wrapped_rtl.h"      // IWYU pragma: export
#include "drc/drc.h"                // IWYU pragma: export
#include "fault/fault.h"            // IWYU pragma: export
#include "fp/circuits.h"            // IWYU pragma: export
#include "fp/softfloat.h"           // IWYU pragma: export
#include "inv/inv.h"                // IWYU pragma: export
#include "ir/eval.h"                // IWYU pragma: export
#include "ir/expr.h"                // IWYU pragma: export
#include "ir/transition_system.h"   // IWYU pragma: export
#include "rtl/lower.h"              // IWYU pragma: export
#include "rtl/netlist.h"            // IWYU pragma: export
#include "rtl/sim.h"                // IWYU pragma: export
#include "sat/solver.h"             // IWYU pragma: export
#include "sec/engine.h"             // IWYU pragma: export
#include "sec/transaction.h"        // IWYU pragma: export
#include "slice/slice.h"            // IWYU pragma: export
#include "slice/ternary.h"          // IWYU pragma: export
#include "slm/channels.h"           // IWYU pragma: export
#include "slm/kernel.h"             // IWYU pragma: export
#include "slmc/elaborate.h"         // IWYU pragma: export
#include "slmc/interp.h"            // IWYU pragma: export
#include "slmc/lint.h"              // IWYU pragma: export
