// Width-parameterized integer types with hardware (wire) semantics.
//
// These are the reproduction of the sc_int/sc_uint datatypes Section 3.1.1
// recommends: a C++ system-level model that uses HdlInt<8,true> for a
// `wire signed [7:0]` computes exactly what the RTL computes, including the
// overflow that makes addition non-associative (Fig 1).  A model using plain
// `int` instead silently widens every intermediate to 32 bits and masks the
// overflow — the exact divergence mechanism the paper warns about.
//
// Semantics: every operation wraps to W bits immediately (wire assignment
// context), so `tmp = a + b` on HdlInt<8> overflows exactly like the RTL
// assign in Fig 1.  Widths up to 64 bits; wider values use bv::BitVector.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>

#include "bitvec/bitvector.h"
#include "common/check.h"

namespace dfv::bv {

template <unsigned W, bool Signed>
class HdlInt {
  static_assert(W >= 1 && W <= 64, "HdlInt supports 1..64 bits; use BitVector beyond");

 public:
  using NativeType = std::conditional_t<Signed, std::int64_t, std::uint64_t>;

  constexpr HdlInt() : bits_(0) {}

  /// Wraps `v` to W bits (two's complement).
  constexpr HdlInt(std::int64_t v)  // NOLINT(google-explicit-constructor)
      : bits_(static_cast<std::uint64_t>(v) & mask()) {}

  static HdlInt fromBits(std::uint64_t raw) {
    HdlInt r;
    r.bits_ = raw & mask();
    return r;
  }

  static HdlInt fromBitVector(const BitVector& v) {
    DFV_CHECK_MSG(v.width() == W, "BitVector width " << v.width()
                                                     << " != HdlInt width " << W);
    return fromBits(v.toUint64());
  }

  /// Raw W bits, zero-extended into 64.
  constexpr std::uint64_t bits() const { return bits_; }

  /// Numeric value: sign-extended if Signed, else zero-extended.
  constexpr NativeType value() const {
    if constexpr (Signed) {
      const std::uint64_t signBit = std::uint64_t{1} << (W - 1);
      const std::uint64_t v = bits_;
      if (W < 64 && (v & signBit))
        return static_cast<std::int64_t>(v | (~std::uint64_t{0} << W));
      return static_cast<std::int64_t>(v);
    } else {
      return bits_;
    }
  }

  BitVector toBitVector() const { return BitVector::fromUint(W, bits_); }

  // Arithmetic: wraps to W bits immediately (hardware wire semantics).
  friend constexpr HdlInt operator+(HdlInt a, HdlInt b) {
    return fromBitsWrapped(a.bits_ + b.bits_);
  }
  friend constexpr HdlInt operator-(HdlInt a, HdlInt b) {
    return fromBitsWrapped(a.bits_ - b.bits_);
  }
  friend constexpr HdlInt operator*(HdlInt a, HdlInt b) {
    return fromBitsWrapped(static_cast<std::uint64_t>(a.value()) *
                           static_cast<std::uint64_t>(b.value()));
  }
  friend constexpr HdlInt operator&(HdlInt a, HdlInt b) {
    return fromBitsWrapped(a.bits_ & b.bits_);
  }
  friend constexpr HdlInt operator|(HdlInt a, HdlInt b) {
    return fromBitsWrapped(a.bits_ | b.bits_);
  }
  friend constexpr HdlInt operator^(HdlInt a, HdlInt b) {
    return fromBitsWrapped(a.bits_ ^ b.bits_);
  }
  constexpr HdlInt operator~() const { return fromBitsWrapped(~bits_); }
  constexpr HdlInt operator-() const { return fromBitsWrapped(0 - bits_); }

  /// Logical shift left (bits above W fall off).
  friend constexpr HdlInt operator<<(HdlInt a, unsigned sh) {
    return sh >= W ? HdlInt() : fromBitsWrapped(a.bits_ << sh);
  }
  /// Shift right: arithmetic if Signed (HDL >>> on signed), else logical.
  friend constexpr HdlInt operator>>(HdlInt a, unsigned sh) {
    if (sh >= W) return HdlInt(Signed && a.value() < 0 ? -1 : 0);
    if constexpr (Signed)
      return HdlInt(a.value() >> sh);
    else
      return fromBitsWrapped(a.bits_ >> sh);
  }

  friend constexpr bool operator==(HdlInt a, HdlInt b) { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(HdlInt a, HdlInt b) { return a.bits_ != b.bits_; }
  friend constexpr bool operator<(HdlInt a, HdlInt b) { return a.value() < b.value(); }
  friend constexpr bool operator<=(HdlInt a, HdlInt b) { return a.value() <= b.value(); }
  friend constexpr bool operator>(HdlInt a, HdlInt b) { return a.value() > b.value(); }
  friend constexpr bool operator>=(HdlInt a, HdlInt b) { return a.value() >= b.value(); }

  HdlInt& operator+=(HdlInt b) { return *this = *this + b; }
  HdlInt& operator-=(HdlInt b) { return *this = *this - b; }
  HdlInt& operator*=(HdlInt b) { return *this = *this * b; }

  /// Verilog part-select [hi:lo] as an unsigned value.
  template <unsigned Hi, unsigned Lo>
  HdlInt<Hi - Lo + 1, false> range() const {
    static_assert(Hi < W && Lo <= Hi, "part-select out of range");
    return HdlInt<Hi - Lo + 1, false>::fromBits(bits_ >> Lo);
  }

  /// Bit i as bool.
  constexpr bool bit(unsigned i) const {
    DFV_CHECK_MSG(i < W, "bit index " << i << " out of width " << W);
    return (bits_ >> i) & 1u;
  }

 private:
  static constexpr std::uint64_t mask() {
    return W == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << W) - 1);
  }
  static constexpr HdlInt fromBitsWrapped(std::uint64_t raw) {
    HdlInt r;
    r.bits_ = raw & mask();
    return r;
  }

  std::uint64_t bits_;
};

template <unsigned W>
using Int = HdlInt<W, true>;
template <unsigned W>
using UInt = HdlInt<W, false>;

/// Verilog {hi, lo} concatenation.
template <unsigned WH, bool SH, unsigned WL, bool SL>
HdlInt<WH + WL, false> concat(HdlInt<WH, SH> hi, HdlInt<WL, SL> lo) {
  static_assert(WH + WL <= 64, "concat result exceeds 64 bits; use BitVector");
  return HdlInt<WH + WL, false>::fromBits((hi.bits() << WL) | lo.bits());
}

template <unsigned W, bool S>
std::ostream& operator<<(std::ostream& os, HdlInt<W, S> v) {
  return os << v.value();
}

}  // namespace dfv::bv
