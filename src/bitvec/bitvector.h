// Arbitrary-width bit-vector values with HDL (Verilog/VHDL-style) semantics.
//
// This is the reproduction of the datatype substrate the paper's Section 3.1
// calls for: RTL uses custom-sized bit-vectors while plain C/C++ models are
// stuck with int/long long, which masks overflow effects (Fig 1).  BitVector
// gives system-level models the same finite-precision, two's-complement,
// wrap-around arithmetic the RTL has, the way sc_int/sc_bigint do in SystemC.
//
// Semantics:
//  * A BitVector is a width (>= 1) plus that many bits.  Signedness is a
//    property of the *operation*, not the value (as in SMT-LIB / synthesized
//    netlists): sdiv vs udiv, slt vs ult, sext vs zext.
//  * Binary arithmetic/bitwise operators require equal widths and produce the
//    operand width, wrapping on overflow (the HDL assignment-context rule).
//    Width-extending forms (addFull, mulFull, ...) are provided separately.
//  * Division/remainder by zero follow the SMT-LIB convention (udiv -> all
//    ones, urem -> dividend) so every operation is total and deterministic;
//    Verilog would produce X, which a two-valued model cannot represent.
//
// The canonical representation keeps all bits above `width` zero at all
// times; every mutating path re-normalizes.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace dfv::bv {

/// An N-bit two's-complement bit-vector value, N >= 1.
class BitVector {
 public:
  /// Constructs a 1-bit zero.  (A zero-width vector is not representable.)
  BitVector() : width_(1), words_(1, 0) {}

  /// Constructs a `width`-bit zero value.
  explicit BitVector(unsigned width) : width_(width) {
    DFV_CHECK_MSG(width >= 1, "BitVector width must be >= 1");
    words_.assign(numWords(), 0);
  }

  /// Builds a `width`-bit value from the low `width` bits of `v`.
  static BitVector fromUint(unsigned width, std::uint64_t v);

  /// Builds a `width`-bit value from `v`, sign-extending or truncating.
  static BitVector fromInt(unsigned width, std::int64_t v);

  /// Builds a value with all `width` bits set.
  static BitVector allOnes(unsigned width);

  /// Parses "8'hff", "4'b1010", "12'd255", or plain decimal "255" (32-bit).
  /// Throws CheckError on malformed input or digits not fitting the base.
  static BitVector fromString(std::string_view text);

  unsigned width() const { return width_; }

  /// Reads bit `i` (0 = LSB).
  bool bit(unsigned i) const {
    DFV_CHECK_MSG(i < width_, "bit index " << i << " out of width " << width_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Writes bit `i` (0 = LSB).
  void setBit(unsigned i, bool v) {
    DFV_CHECK_MSG(i < width_, "bit index " << i << " out of width " << width_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  /// The sign bit (MSB).
  bool msb() const { return bit(width_ - 1); }

  /// True iff every bit is zero.
  bool isZero() const;

  /// True iff every bit is one.
  bool isAllOnes() const;

  /// Low 64 bits, zero-extended.
  std::uint64_t toUint64() const { return words_[0]; }

  /// Value as a signed 64-bit integer; requires width() <= 64 so the value is
  /// exactly representable.
  std::int64_t toInt64() const;

  /// Number of 1 bits.
  unsigned popcount() const;

  /// Number of leading (most-significant) zero bits; width() if zero.
  unsigned countLeadingZeros() const;

  // ----- width changes -------------------------------------------------
  /// Zero-extends (or is identity) to `newWidth` >= width().
  BitVector zext(unsigned newWidth) const;
  /// Sign-extends (or is identity) to `newWidth` >= width().
  BitVector sext(unsigned newWidth) const;
  /// Truncates to the low `newWidth` <= width() bits.
  BitVector trunc(unsigned newWidth) const;
  /// Resizes: truncates if narrower, zero-/sign-extends if wider.
  BitVector resize(unsigned newWidth, bool asSigned) const;

  /// Bits [hi:lo] inclusive, as a (hi-lo+1)-bit value (Verilog part-select).
  BitVector extract(unsigned hi, unsigned lo) const;

  /// {hi, lo}: `hi` becomes the most-significant part (Verilog concatenation).
  static BitVector concat(const BitVector& hi, const BitVector& lo);

  // ----- bitwise -------------------------------------------------------
  BitVector operator~() const;
  friend BitVector operator&(const BitVector& a, const BitVector& b);
  friend BitVector operator|(const BitVector& a, const BitVector& b);
  friend BitVector operator^(const BitVector& a, const BitVector& b);

  // ----- arithmetic (same-width, wrap-around) --------------------------
  friend BitVector operator+(const BitVector& a, const BitVector& b);
  friend BitVector operator-(const BitVector& a, const BitVector& b);
  friend BitVector operator*(const BitVector& a, const BitVector& b);
  /// Two's-complement negation (wraps at width: -INT_MIN == INT_MIN).
  BitVector neg() const;

  /// Full-precision forms: result width grows so no information is lost.
  BitVector addFull(const BitVector& b) const;   // width = max+1
  BitVector mulFull(const BitVector& b) const;   // width = wa+wb (unsigned)
  BitVector smulFull(const BitVector& b) const;  // width = wa+wb (signed)

  BitVector udiv(const BitVector& b) const;  // b==0 -> all ones
  BitVector urem(const BitVector& b) const;  // b==0 -> *this
  BitVector sdiv(const BitVector& b) const;  // truncating; b==0 per SMT-LIB
  BitVector srem(const BitVector& b) const;  // sign follows dividend

  // ----- shifts (shift amounts >= width yield 0 / sign-fill) -----------
  BitVector shl(unsigned amount) const;
  BitVector lshr(unsigned amount) const;
  BitVector ashr(unsigned amount) const;
  BitVector shl(const BitVector& amount) const;
  BitVector lshr(const BitVector& amount) const;
  BitVector ashr(const BitVector& amount) const;

  // ----- comparisons ---------------------------------------------------
  /// Structural equality: equal width AND equal bits.
  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.width_ == b.width_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }
  bool ult(const BitVector& b) const;
  bool ule(const BitVector& b) const;
  bool slt(const BitVector& b) const;
  bool sle(const BitVector& b) const;

  // ----- reductions ----------------------------------------------------
  bool reduceAnd() const { return isAllOnes(); }
  bool reduceOr() const { return !isZero(); }
  bool reduceXor() const { return popcount() & 1u; }

  // ----- formatting ----------------------------------------------------
  /// "8'hff"-style string; base in {2, 10, 16}.  Base 10 prints unsigned.
  std::string toString(unsigned base = 16) const;
  /// Decimal interpretation as signed two's-complement (arbitrary width).
  std::string toSignedDecimalString() const;

  /// FNV-1a over width and words, for hash containers.
  std::size_t hash() const;

 private:
  unsigned numWords() const { return (width_ + 63) / 64; }
  /// Zeroes bits above width_ in the top word (canonical form).
  void normalize();
  static void checkSameWidth(const BitVector& a, const BitVector& b);

  unsigned width_;
  std::vector<std::uint64_t> words_;  // little-endian limbs; high bits zero
};

std::ostream& operator<<(std::ostream& os, const BitVector& v);

}  // namespace dfv::bv

template <>
struct std::hash<dfv::bv::BitVector> {
  std::size_t operator()(const dfv::bv::BitVector& v) const noexcept {
    return v.hash();
  }
};
