#include "bitvec/bitvector.h"

#include <algorithm>
#include <bit>
#include <ostream>

namespace dfv::bv {

namespace {
constexpr std::uint64_t kAll = ~std::uint64_t{0};
}  // namespace

void BitVector::normalize() {
  const unsigned rem = width_ % 64;
  if (rem != 0) words_.back() &= kAll >> (64 - rem);
}

void BitVector::checkSameWidth(const BitVector& a, const BitVector& b) {
  DFV_CHECK_MSG(a.width_ == b.width_, "width mismatch: " << a.width_ << " vs "
                                                         << b.width_);
}

BitVector BitVector::fromUint(unsigned width, std::uint64_t v) {
  BitVector r(width);
  r.words_[0] = v;
  r.normalize();
  return r;
}

BitVector BitVector::fromInt(unsigned width, std::int64_t v) {
  BitVector r(width);
  const auto uv = static_cast<std::uint64_t>(v);
  for (unsigned w = 0; w < r.numWords(); ++w)
    r.words_[w] = (w == 0) ? uv : (v < 0 ? kAll : 0);
  r.normalize();
  return r;
}

BitVector BitVector::allOnes(unsigned width) {
  BitVector r(width);
  for (auto& w : r.words_) w = kAll;
  r.normalize();
  return r;
}

BitVector BitVector::fromString(std::string_view text) {
  // Forms: <width>'<base><digits> with base in {b,d,h}, or plain decimal.
  const auto tick = text.find('\'');
  unsigned width = 32;
  unsigned base = 10;
  std::string_view digits = text;
  if (tick != std::string_view::npos) {
    DFV_CHECK_MSG(tick > 0 && tick + 1 < text.size(),
                  "malformed literal '" << std::string(text) << "'");
    width = 0;
    for (char c : text.substr(0, tick)) {
      DFV_CHECK_MSG(c >= '0' && c <= '9',
                    "bad width in literal '" << std::string(text) << "'");
      width = width * 10 + static_cast<unsigned>(c - '0');
    }
    DFV_CHECK_MSG(width >= 1, "zero width literal '" << std::string(text) << "'");
    const char bc = text[tick + 1];
    switch (bc) {
      case 'b': case 'B': base = 2; break;
      case 'd': case 'D': base = 10; break;
      case 'h': case 'H': base = 16; break;
      default:
        DFV_UNREACHABLE("bad base char '" << bc << "' in literal");
    }
    digits = text.substr(tick + 2);
  }
  DFV_CHECK_MSG(!digits.empty(), "empty digits in literal '"
                                     << std::string(text) << "'");
  BitVector r(width);
  const BitVector baseBv = BitVector::fromUint(width, base);
  for (char c : digits) {
    if (c == '_') continue;
    unsigned d;
    if (c >= '0' && c <= '9')
      d = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
      d = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F')
      d = static_cast<unsigned>(c - 'A') + 10;
    else
      DFV_UNREACHABLE("bad digit '" << c << "' in literal");
    DFV_CHECK_MSG(d < base, "digit '" << c << "' out of range for base "
                                      << base);
    r = r * baseBv + BitVector::fromUint(width, d);
  }
  return r;
}

bool BitVector::isZero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

bool BitVector::isAllOnes() const {
  const unsigned rem = width_ % 64;
  for (unsigned i = 0; i + 1 < numWords(); ++i)
    if (words_[i] != kAll) return false;
  const std::uint64_t topMask = rem == 0 ? kAll : (kAll >> (64 - rem));
  return words_.back() == topMask;
}

std::int64_t BitVector::toInt64() const {
  DFV_CHECK_MSG(width_ <= 64, "toInt64 on width " << width_);
  std::uint64_t v = words_[0];
  if (width_ < 64 && msb()) v |= kAll << width_;
  return static_cast<std::int64_t>(v);
}

unsigned BitVector::popcount() const {
  unsigned n = 0;
  for (auto w : words_) n += static_cast<unsigned>(std::popcount(w));
  return n;
}

unsigned BitVector::countLeadingZeros() const {
  for (unsigned i = width_; i-- > 0;)
    if (bit(i)) return width_ - 1 - i;
  return width_;
}

BitVector BitVector::zext(unsigned newWidth) const {
  DFV_CHECK_MSG(newWidth >= width_, "zext to narrower width");
  BitVector r(newWidth);
  std::copy(words_.begin(), words_.end(), r.words_.begin());
  return r;
}

BitVector BitVector::sext(unsigned newWidth) const {
  DFV_CHECK_MSG(newWidth >= width_, "sext to narrower width");
  if (!msb()) return zext(newWidth);
  BitVector r = zext(newWidth);
  for (unsigned i = width_; i < newWidth; ++i) r.setBit(i, true);
  return r;
}

BitVector BitVector::trunc(unsigned newWidth) const {
  DFV_CHECK_MSG(newWidth <= width_ && newWidth >= 1,
                "trunc " << width_ << " -> " << newWidth);
  BitVector r(newWidth);
  std::copy(words_.begin(), words_.begin() + r.numWords(), r.words_.begin());
  r.normalize();
  return r;
}

BitVector BitVector::resize(unsigned newWidth, bool asSigned) const {
  if (newWidth <= width_) return trunc(newWidth);
  return asSigned ? sext(newWidth) : zext(newWidth);
}

BitVector BitVector::extract(unsigned hi, unsigned lo) const {
  DFV_CHECK_MSG(hi < width_ && lo <= hi,
                "extract [" << hi << ':' << lo << "] of width " << width_);
  return lshr(lo).trunc(hi - lo + 1);
}

BitVector BitVector::concat(const BitVector& hi, const BitVector& lo) {
  BitVector r = lo.zext(lo.width_ + hi.width_);
  const BitVector hiShifted = hi.zext(lo.width_ + hi.width_).shl(lo.width_);
  return r | hiShifted;
}

BitVector BitVector::operator~() const {
  BitVector r(width_);
  for (unsigned i = 0; i < numWords(); ++i) r.words_[i] = ~words_[i];
  r.normalize();
  return r;
}

BitVector operator&(const BitVector& a, const BitVector& b) {
  BitVector::checkSameWidth(a, b);
  BitVector r(a.width_);
  for (unsigned i = 0; i < r.numWords(); ++i)
    r.words_[i] = a.words_[i] & b.words_[i];
  return r;
}

BitVector operator|(const BitVector& a, const BitVector& b) {
  BitVector::checkSameWidth(a, b);
  BitVector r(a.width_);
  for (unsigned i = 0; i < r.numWords(); ++i)
    r.words_[i] = a.words_[i] | b.words_[i];
  return r;
}

BitVector operator^(const BitVector& a, const BitVector& b) {
  BitVector::checkSameWidth(a, b);
  BitVector r(a.width_);
  for (unsigned i = 0; i < r.numWords(); ++i)
    r.words_[i] = a.words_[i] ^ b.words_[i];
  return r;
}

BitVector operator+(const BitVector& a, const BitVector& b) {
  BitVector::checkSameWidth(a, b);
  BitVector r(a.width_);
  std::uint64_t carry = 0;
  for (unsigned i = 0; i < r.numWords(); ++i) {
    const std::uint64_t s1 = a.words_[i] + carry;
    const std::uint64_t c1 = s1 < carry ? 1u : 0u;
    const std::uint64_t s2 = s1 + b.words_[i];
    const std::uint64_t c2 = s2 < s1 ? 1u : 0u;
    r.words_[i] = s2;
    carry = c1 | c2;
  }
  r.normalize();
  return r;
}

BitVector operator-(const BitVector& a, const BitVector& b) {
  return a + b.neg();
}

BitVector BitVector::neg() const { return ~*this + BitVector::fromUint(width_, 1); }

BitVector operator*(const BitVector& a, const BitVector& b) {
  BitVector::checkSameWidth(a, b);
  // Schoolbook multiply over 32-bit half-limbs, truncated to operand width.
  const unsigned nw = a.numWords();
  std::vector<std::uint64_t> acc(nw, 0);
  auto addWordAt = [&](unsigned wordIdx, std::uint64_t v) {
    while (wordIdx < nw && v != 0) {
      acc[wordIdx] += v;
      v = acc[wordIdx] < v ? 1u : 0u;  // carry out
      ++wordIdx;
    }
  };
  for (unsigned i = 0; i < nw; ++i) {
    for (unsigned j = 0; i + j < nw; ++j) {
      const std::uint64_t x0 = a.words_[i] & 0xffffffffu;
      const std::uint64_t x1 = a.words_[i] >> 32;
      const std::uint64_t y0 = b.words_[j] & 0xffffffffu;
      const std::uint64_t y1 = b.words_[j] >> 32;
      const std::uint64_t p00 = x0 * y0;
      const std::uint64_t p01 = x0 * y1;
      const std::uint64_t p10 = x1 * y0;
      const std::uint64_t p11 = x1 * y1;
      addWordAt(i + j, p00);
      addWordAt(i + j, (p01 & 0xffffffffu) << 32);
      addWordAt(i + j, (p10 & 0xffffffffu) << 32);
      if (i + j + 1 < nw) {
        addWordAt(i + j + 1, p01 >> 32);
        addWordAt(i + j + 1, p10 >> 32);
        addWordAt(i + j + 1, p11);
      }
    }
  }
  BitVector r(a.width_);
  r.words_ = std::move(acc);
  r.normalize();
  return r;
}

BitVector BitVector::addFull(const BitVector& b) const {
  const unsigned w = std::max(width_, b.width_) + 1;
  return zext(w) + b.zext(w);
}

BitVector BitVector::mulFull(const BitVector& b) const {
  const unsigned w = width_ + b.width_;
  return zext(w) * b.zext(w);
}

BitVector BitVector::smulFull(const BitVector& b) const {
  const unsigned w = width_ + b.width_;
  return sext(w) * b.sext(w);
}

BitVector BitVector::udiv(const BitVector& b) const {
  checkSameWidth(*this, b);
  if (b.isZero()) return allOnes(width_);
  // Restoring long division, bit-serial MSB-first.
  BitVector q(width_);
  BitVector rem(width_);
  for (unsigned i = width_; i-- > 0;) {
    rem = rem.shl(1);
    rem.setBit(0, bit(i));
    if (!rem.ult(b)) {
      rem = rem - b;
      q.setBit(i, true);
    }
  }
  return q;
}

BitVector BitVector::urem(const BitVector& b) const {
  checkSameWidth(*this, b);
  if (b.isZero()) return *this;
  return *this - udiv(b) * b;
}

BitVector BitVector::sdiv(const BitVector& b) const {
  checkSameWidth(*this, b);
  const bool na = msb(), nb = b.msb();
  const BitVector ua = na ? neg() : *this;
  const BitVector ub = nb ? b.neg() : b;
  const BitVector uq = ua.udiv(ub);
  return (na != nb) ? uq.neg() : uq;
}

BitVector BitVector::srem(const BitVector& b) const {
  checkSameWidth(*this, b);
  const bool na = msb();
  const BitVector ua = na ? neg() : *this;
  const BitVector ub = b.msb() ? b.neg() : b;
  const BitVector ur = ua.urem(ub);
  return na ? ur.neg() : ur;
}

BitVector BitVector::shl(unsigned amount) const {
  BitVector r(width_);
  if (amount >= width_) return r;
  const unsigned wordShift = amount / 64, bitShift = amount % 64;
  for (unsigned i = numWords(); i-- > 0;) {
    std::uint64_t v = 0;
    if (i >= wordShift) {
      v = words_[i - wordShift] << bitShift;
      if (bitShift != 0 && i > wordShift)
        v |= words_[i - wordShift - 1] >> (64 - bitShift);
    }
    r.words_[i] = v;
  }
  r.normalize();
  return r;
}

BitVector BitVector::lshr(unsigned amount) const {
  BitVector r(width_);
  if (amount >= width_) return r;
  const unsigned wordShift = amount / 64, bitShift = amount % 64;
  const unsigned nw = numWords();
  for (unsigned i = 0; i < nw; ++i) {
    std::uint64_t v = 0;
    if (i + wordShift < nw) {
      v = words_[i + wordShift] >> bitShift;
      if (bitShift != 0 && i + wordShift + 1 < nw)
        v |= words_[i + wordShift + 1] << (64 - bitShift);
    }
    r.words_[i] = v;
  }
  return r;
}

BitVector BitVector::ashr(unsigned amount) const {
  const bool sign = msb();
  if (amount >= width_)
    return sign ? allOnes(width_) : BitVector(width_);
  BitVector r = lshr(amount);
  if (sign)
    for (unsigned i = width_ - amount; i < width_; ++i) r.setBit(i, true);
  return r;
}

namespace {
// Shift amount as a clamped unsigned; anything >= width saturates.
unsigned clampShift(const BitVector& amount, unsigned width) {
  for (unsigned i = 64; i < amount.width(); ++i)
    if (amount.bit(i)) return width;
  const std::uint64_t v = amount.toUint64();
  return v >= width ? width : static_cast<unsigned>(v);
}
}  // namespace

BitVector BitVector::shl(const BitVector& amount) const {
  return shl(clampShift(amount, width_));
}
BitVector BitVector::lshr(const BitVector& amount) const {
  return lshr(clampShift(amount, width_));
}
BitVector BitVector::ashr(const BitVector& amount) const {
  return ashr(clampShift(amount, width_));
}

bool BitVector::ult(const BitVector& b) const {
  checkSameWidth(*this, b);
  for (unsigned i = numWords(); i-- > 0;) {
    if (words_[i] != b.words_[i]) return words_[i] < b.words_[i];
  }
  return false;
}

bool BitVector::ule(const BitVector& b) const { return !b.ult(*this); }

bool BitVector::slt(const BitVector& b) const {
  checkSameWidth(*this, b);
  if (msb() != b.msb()) return msb();
  return ult(b);
}

bool BitVector::sle(const BitVector& b) const { return !b.slt(*this); }

std::string BitVector::toString(unsigned base) const {
  std::string out = std::to_string(width_) + "'";
  switch (base) {
    case 2: {
      out += 'b';
      for (unsigned i = width_; i-- > 0;) out += bit(i) ? '1' : '0';
      return out;
    }
    case 16: {
      out += 'h';
      const unsigned digits = (width_ + 3) / 4;
      for (unsigned d = digits; d-- > 0;) {
        unsigned nib = 0;
        for (unsigned b2 = 0; b2 < 4; ++b2) {
          const unsigned i = d * 4 + b2;
          if (i < width_ && bit(i)) nib |= 1u << b2;
        }
        out += "0123456789abcdef"[nib];
      }
      return out;
    }
    case 10: {
      out += 'd';
      if (width_ < 4) {  // value fits trivially; 10 is not representable
        out += std::to_string(toUint64());
        return out;
      }
      // Repeated division by 10.
      BitVector v = *this;
      const BitVector ten = BitVector::fromUint(width_, 10);
      std::string rev;
      if (v.isZero()) rev = "0";
      while (!v.isZero()) {
        const BitVector q = v.udiv(ten);
        const BitVector r = v - q * ten;
        rev += static_cast<char>('0' + r.toUint64());
        v = q;
      }
      out.append(rev.rbegin(), rev.rend());
      return out;
    }
    default:
      DFV_UNREACHABLE("unsupported base " << base);
  }
}

std::string BitVector::toSignedDecimalString() const {
  if (!msb()) {
    BitVector v = zext(width_ + 1);
    std::string s = v.toString(10);
    return s.substr(s.find('d') + 1);
  }
  BitVector mag = neg().zext(width_ + 1);
  std::string s = mag.toString(10);
  return "-" + s.substr(s.find('d') + 1);
}

std::size_t BitVector::hash() const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(width_);
  for (auto w : words_) mix(w);
  return h;
}

std::ostream& operator<<(std::ostream& os, const BitVector& v) {
  return os << v.toString(16);
}

}  // namespace dfv::bv
