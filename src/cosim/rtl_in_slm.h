// Block substitution: an RTL block plugged into a running SLM system.
//
// §2(b): "Replace a block of the SLM with a wrapped-RTL corresponding to
// that SLM block and co-simulate the wrapped-RTL and the remaining SLM
// blocks."  RtlBlockInSlm is that plug: it owns an rtl::Simulator, advances
// it one cycle per SLM clock edge, pulls its input stream from a FIFO
// (where an upstream SLM block produces) and pushes valid outputs into a
// FIFO (where a downstream SLM block consumes).  Clean FIFO boundaries on
// both models are what §4.2's consistent-partitioning recommendation buys.
#pragma once

#include "bitvec/bitvector.h"
#include "cosim/wrapped_rtl.h"
#include "rtl/sim.h"
#include "slm/channels.h"
#include "slm/kernel.h"

namespace dfv::cosim {

/// An SLM module whose behaviour is an embedded cycle-stepped RTL block.
class RtlBlockInSlm : public slm::Module {
 public:
  RtlBlockInSlm(slm::Kernel& kernel, std::string name,
                const rtl::Module& rtlModule, StreamPorts ports,
                slm::Clock& clock, slm::Fifo<bv::BitVector>& input,
                slm::Fifo<bv::BitVector>& output)
      : slm::Module(kernel, std::move(name)),
        sim_(rtlModule),
        ports_(std::move(ports)),
        clock_(clock),
        input_(input),
        output_(output) {
    const rtl::NetId in = sim_.module().findInput(ports_.inData);
    DFV_CHECK_MSG(in != rtl::kNoNet, "no input '" << ports_.inData << "'");
    dataWidth_ = sim_.module().netWidth(in);
    kernel.spawn(cycleLoop(), this->name() + ".cycle");
  }

  std::uint64_t cyclesRun() const { return cycles_; }

 private:
  slm::Process cycleLoop() {
    for (;;) {
      co_await clock_.rising();
      auto item = input_.tryGet();
      if (item.has_value()) {
        DFV_CHECK_MSG(item->width() == dataWidth_, "stream width mismatch");
        sim_.setInput(ports_.inData, *item);
        sim_.setInputUint(ports_.inValid, 1);
      } else {
        sim_.setInput(ports_.inData, bv::BitVector(dataWidth_));
        sim_.setInputUint(ports_.inValid, 0);
      }
      if (!ports_.stall.empty()) sim_.setInputUint(ports_.stall, 0);
      sim_.evalCombinational();
      if (!sim_.outputValue(ports_.outValid).isZero()) {
        const bool pushed = output_.tryPut(sim_.outputValue(ports_.outData));
        DFV_CHECK_MSG(pushed, "output fifo overflow in '" << name()
                                                          << "' (size the "
                                                             "fifo for the "
                                                             "RTL burst)");
      }
      sim_.clockEdge();
      ++cycles_;
    }
  }

  rtl::Simulator sim_;
  StreamPorts ports_;
  slm::Clock& clock_;
  slm::Fifo<bv::BitVector>& input_;
  slm::Fifo<bv::BitVector>& output_;
  unsigned dataWidth_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace dfv::cosim
