#include "cosim/scoreboard.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace dfv::cosim {

std::string Mismatch::describe() const {
  std::ostringstream os;
  os << "item " << index << ": expected " << expected.toString(16) << " (@"
     << refTime << "), got " << actual.toString(16) << " (@" << dutTime
     << ")";
  return os.str();
}

namespace {
void recordSkew(ScoreboardStats& stats, std::int64_t skew,
                std::uint64_t matchedSoFar) {
  const std::int64_t absSkew = skew < 0 ? -skew : skew;
  stats.maxSkew = std::max(stats.maxSkew, absSkew);
  // Running mean over matches.
  stats.meanSkew += (static_cast<double>(absSkew) - stats.meanSkew) /
                    static_cast<double>(matchedSoFar);
}
}  // namespace

// ----- CycleExactScoreboard -------------------------------------------------

void CycleExactScoreboard::expect(std::uint64_t cycle, bv::BitVector value) {
  DFV_CHECK_MSG(expected_.emplace(cycle, std::move(value)).second,
                "duplicate expectation for cycle " << cycle);
}

void CycleExactScoreboard::observe(std::uint64_t cycle,
                                   const bv::BitVector& value) {
  auto it = expected_.find(cycle);
  if (it == expected_.end()) {
    ++dutOnly_;
    mismatches_.push_back(Mismatch{cycle, cycle, cycle,
                                   bv::BitVector(value.width()), value});
    return;
  }
  if (it->second == value) {
    ++stats_.matched;
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(Mismatch{cycle, cycle, cycle, it->second, value});
  }
  expected_.erase(it);
}

ScoreboardStats CycleExactScoreboard::finish() {
  stats_.pendingRef = expected_.size();
  stats_.pendingDut = dutOnly_;
  return stats_;
}

// ----- InOrderScoreboard ----------------------------------------------------

void InOrderScoreboard::expect(bv::BitVector value, std::uint64_t refTime) {
  queue_.push_back(Pending{std::move(value), refTime});
}

void InOrderScoreboard::observe(const bv::BitVector& value,
                                std::uint64_t dutTime) {
  if (queue_.empty()) {
    ++dutOnly_;
    mismatches_.push_back(Mismatch{streamIndex_++, 0, dutTime,
                                   bv::BitVector(value.width()), value});
    return;
  }
  const Pending ref = std::move(queue_.front());
  queue_.pop_front();
  const std::int64_t skew = static_cast<std::int64_t>(dutTime) -
                            static_cast<std::int64_t>(ref.time);
  skews_.push_back(skew);
  if (ref.value == value) {
    ++stats_.matched;
    recordSkew(stats_, skew, stats_.matched);
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(
        Mismatch{streamIndex_, ref.time, dutTime, ref.value, value});
  }
  ++streamIndex_;
}

ScoreboardStats InOrderScoreboard::finish() {
  stats_.pendingRef = queue_.size();
  stats_.pendingDut = dutOnly_;
  return stats_;
}

// ----- OutOfOrderScoreboard --------------------------------------------------

bool OutOfOrderScoreboard::expect(std::uint64_t tag, bv::BitVector value,
                                  std::uint64_t refTime) {
  if (window_ != 0 && pending_.size() >= window_) return false;
  DFV_CHECK_MSG(
      pending_.emplace(tag, Pending{std::move(value), refTime, expectSeq_})
          .second,
      "duplicate outstanding tag " << tag);
  ++expectSeq_;
  return true;
}

void OutOfOrderScoreboard::observe(std::uint64_t tag,
                                   const bv::BitVector& value,
                                   std::uint64_t dutTime) {
  auto it = pending_.find(tag);
  if (it == pending_.end()) {
    ++dutOnly_;
    mismatches_.push_back(
        Mismatch{tag, 0, dutTime, bv::BitVector(value.width()), value});
    return;
  }
  if (it->second.seq != nextExpectedSeq_) ++reordered_;
  // Advance the in-order horizon past any already-retired sequence numbers.
  nextExpectedSeq_ = std::max(nextExpectedSeq_, it->second.seq + 1);
  const std::int64_t skew = static_cast<std::int64_t>(dutTime) -
                            static_cast<std::int64_t>(it->second.time);
  if (it->second.value == value) {
    ++stats_.matched;
    recordSkew(stats_, skew, stats_.matched);
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(
        Mismatch{tag, it->second.time, dutTime, it->second.value, value});
  }
  pending_.erase(it);
}

ScoreboardStats OutOfOrderScoreboard::finish() {
  stats_.pendingRef = pending_.size();
  stats_.pendingDut = dutOnly_;
  return stats_;
}

}  // namespace dfv::cosim
