#include "cosim/scoreboard.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "fault/fault.h"

namespace dfv::cosim {

std::string Mismatch::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kValueMismatch:
      os << "item " << index << ": expected " << expected.toString(16)
         << " (@" << refTime << "), got " << actual.toString(16) << " (@"
         << dutTime << ")";
      break;
    case Kind::kUnexpectedDut:
      os << "item " << index << ": unexpected DUT value "
         << actual.toString(16) << " (@" << dutTime
         << "); nothing pending on the reference side";
      break;
    case Kind::kMissingDut:
      os << "item " << index << ": expected " << expected.toString(16)
         << " (@" << refTime << "), never observed from the DUT";
      break;
  }
  return os.str();
}

namespace {
void recordSkew(ScoreboardStats& stats, std::int64_t skew,
                std::uint64_t pairedSoFar) {
  const std::int64_t absSkew = skew < 0 ? -skew : skew;
  stats.maxSkew = std::max(stats.maxSkew, absSkew);
  // Running mean over paired items (matched or value-mismatched).
  stats.meanSkew += (static_cast<double>(absSkew) - stats.meanSkew) /
                    static_cast<double>(pairedSoFar);
}

Mismatch valueMismatch(std::uint64_t index, std::uint64_t refTime,
                       std::uint64_t dutTime, bv::BitVector expected,
                       bv::BitVector actual) {
  Mismatch m;
  m.kind = Mismatch::Kind::kValueMismatch;
  m.index = index;
  m.refTime = refTime;
  m.dutTime = dutTime;
  m.expected = std::move(expected);
  m.actual = std::move(actual);
  return m;
}

Mismatch unexpectedDut(std::uint64_t index, std::uint64_t dutTime,
                       bv::BitVector actual) {
  Mismatch m;
  m.kind = Mismatch::Kind::kUnexpectedDut;
  m.index = index;
  m.dutTime = dutTime;
  m.actual = std::move(actual);
  return m;
}

Mismatch missingDut(std::uint64_t index, std::uint64_t refTime,
                    bv::BitVector expected) {
  Mismatch m;
  m.kind = Mismatch::Kind::kMissingDut;
  m.index = index;
  m.refTime = refTime;
  m.expected = std::move(expected);
  return m;
}

/// Fault-injection hook shared by every scoreboard's observe(): each DUT
/// sample is one site hit.  kCorruptSample flips the LSB — the smallest
/// corruption a comparison must still catch; kThrowCheckError models a
/// transactor crash mid-stream.
bv::BitVector sampleSite(const bv::BitVector& value) {
  switch (fault::onSiteHit(fault::Site::kCosimSample)) {
    case fault::Policy::kThrowCheckError:
      fault::throwInjected(fault::Site::kCosimSample);
    case fault::Policy::kCorruptSample: {
      bv::BitVector corrupted = value;
      corrupted.setBit(0, !corrupted.bit(0));
      return corrupted;
    }
    default:
      return value;
  }
}
}  // namespace

// ----- CycleExactScoreboard -------------------------------------------------

void CycleExactScoreboard::expect(std::uint64_t cycle, bv::BitVector value) {
  DFV_CHECK_MSG(expected_.emplace(cycle, std::move(value)).second,
                "duplicate expectation for cycle " << cycle);
}

void CycleExactScoreboard::observe(std::uint64_t cycle,
                                   const bv::BitVector& rawValue) {
  const bv::BitVector value = sampleSite(rawValue);
  auto it = expected_.find(cycle);
  if (it == expected_.end()) {
    ++dutOnly_;
    mismatches_.push_back(unexpectedDut(cycle, cycle, value));
    return;
  }
  // Paired by cycle: the skew is zero by construction, recorded anyway so
  // all three scoreboards expose the same per-paired-item policy.
  skews_.push_back(0);
  recordSkew(stats_, 0, static_cast<std::uint64_t>(skews_.size()));
  if (it->second == value) {
    ++stats_.matched;
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(valueMismatch(cycle, cycle, cycle,
                                        std::move(it->second), value));
  }
  expected_.erase(it);
}

ScoreboardStats CycleExactScoreboard::finish() {
  if (!finished_) {
    finished_ = true;
    stats_.pendingRef = expected_.size();
    stats_.pendingDut = dutOnly_;
    // Deterministic order for the flush records.
    std::vector<std::uint64_t> cycles;
    cycles.reserve(expected_.size());
    for (const auto& [cycle, value] : expected_) cycles.push_back(cycle);
    std::sort(cycles.begin(), cycles.end());
    for (std::uint64_t cycle : cycles)
      mismatches_.push_back(
          missingDut(cycle, cycle, std::move(expected_.at(cycle))));
    expected_.clear();
  }
  return stats_;
}

// ----- InOrderScoreboard ----------------------------------------------------

void InOrderScoreboard::expect(bv::BitVector value, std::uint64_t refTime) {
  queue_.push_back(Pending{std::move(value), refTime});
}

void InOrderScoreboard::observe(const bv::BitVector& rawValue,
                                std::uint64_t dutTime) {
  const bv::BitVector value = sampleSite(rawValue);
  if (queue_.empty()) {
    ++dutOnly_;
    mismatches_.push_back(unexpectedDut(streamIndex_++, dutTime, value));
    return;
  }
  Pending ref = std::move(queue_.front());
  queue_.pop_front();
  const std::int64_t skew = static_cast<std::int64_t>(dutTime) -
                            static_cast<std::int64_t>(ref.time);
  skews_.push_back(skew);
  recordSkew(stats_, skew, static_cast<std::uint64_t>(skews_.size()));
  if (ref.value == value) {
    ++stats_.matched;
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(valueMismatch(streamIndex_, ref.time, dutTime,
                                        std::move(ref.value), value));
  }
  ++streamIndex_;
}

ScoreboardStats InOrderScoreboard::finish() {
  if (!finished_) {
    finished_ = true;
    stats_.pendingRef = queue_.size();
    stats_.pendingDut = dutOnly_;
    for (auto& ref : queue_)
      mismatches_.push_back(
          missingDut(streamIndex_++, ref.time, std::move(ref.value)));
    queue_.clear();
  }
  return stats_;
}

// ----- OutOfOrderScoreboard --------------------------------------------------

bool OutOfOrderScoreboard::expect(std::uint64_t tag, bv::BitVector value,
                                  std::uint64_t refTime) {
  if (window_ != 0 && pending_.size() >= window_) return false;
  DFV_CHECK_MSG(
      pending_.emplace(tag, Pending{std::move(value), refTime, expectSeq_})
          .second,
      "duplicate outstanding tag " << tag);
  ++expectSeq_;
  return true;
}

void OutOfOrderScoreboard::observe(std::uint64_t tag,
                                   const bv::BitVector& rawValue,
                                   std::uint64_t dutTime) {
  const bv::BitVector value = sampleSite(rawValue);
  auto it = pending_.find(tag);
  if (it == pending_.end()) {
    ++dutOnly_;
    mismatches_.push_back(unexpectedDut(tag, dutTime, value));
    return;
  }
  if (it->second.seq != nextExpectedSeq_) ++reordered_;
  // Advance the in-order horizon past any already-retired sequence numbers.
  nextExpectedSeq_ = std::max(nextExpectedSeq_, it->second.seq + 1);
  const std::int64_t skew = static_cast<std::int64_t>(dutTime) -
                            static_cast<std::int64_t>(it->second.time);
  skews_.push_back(skew);
  recordSkew(stats_, skew, static_cast<std::uint64_t>(skews_.size()));
  if (it->second.value == value) {
    ++stats_.matched;
  } else {
    ++stats_.mismatched;
    mismatches_.push_back(valueMismatch(tag, it->second.time, dutTime,
                                        std::move(it->second.value), value));
  }
  pending_.erase(it);
}

ScoreboardStats OutOfOrderScoreboard::finish() {
  if (!finished_) {
    finished_ = true;
    stats_.pendingRef = pending_.size();
    stats_.pendingDut = dutOnly_;
    // Flush in expectation order so the records are deterministic.
    std::vector<const std::pair<const std::uint64_t, Pending>*> left;
    left.reserve(pending_.size());
    for (const auto& entry : pending_) left.push_back(&entry);
    std::sort(left.begin(), left.end(), [](const auto* a, const auto* b) {
      return a->second.seq < b->second.seq;
    });
    for (const auto* entry : left)
      mismatches_.push_back(
          missingDut(entry->first, entry->second.time, entry->second.value));
    pending_.clear();
  }
  return stats_;
}

}  // namespace dfv::cosim
