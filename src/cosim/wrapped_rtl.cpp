#include "cosim/wrapped_rtl.h"

namespace dfv::cosim {

StallPolicy randomStalls(std::uint32_t numerator, std::uint32_t denominator,
                         std::uint64_t seed) {
  DFV_CHECK_MSG(denominator > 0 && numerator <= denominator,
                "stall probability must be in [0, 1]");
  // Stateless per-cycle hash (splitmix64) so the policy is a pure function
  // of (seed, cycle) — replayable regardless of call order.
  return [=](std::uint64_t cycle) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (cycle + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return (z % denominator) < numerator;
  };
}

WrappedRtl::WrappedRtl(const rtl::Module& module, StreamPorts ports)
    : sim_(module), ports_(std::move(ports)) {
  const rtl::NetId in = sim_.module().findInput(ports_.inData);
  DFV_CHECK_MSG(in != rtl::kNoNet, "no input port '" << ports_.inData << "'");
  dataWidth_ = sim_.module().netWidth(in);
  DFV_CHECK_MSG(sim_.module().findInput(ports_.inValid) != rtl::kNoNet,
                "no input port '" << ports_.inValid << "'");
  DFV_CHECK_MSG(sim_.module().findOutput(ports_.outData) != rtl::kNoNet,
                "no output port '" << ports_.outData << "'");
  DFV_CHECK_MSG(sim_.module().findOutput(ports_.outValid) != rtl::kNoNet,
                "no output port '" << ports_.outValid << "'");
  if (!ports_.stall.empty())
    DFV_CHECK_MSG(sim_.module().findInput(ports_.stall) != rtl::kNoNet,
                  "no stall port '" << ports_.stall << "'");
}

std::vector<StreamItem> WrappedRtl::run(
    const std::vector<bv::BitVector>& stimulus, std::uint64_t drainCycles,
    const StallPolicy& stall) {
  sim_.reset();
  std::vector<StreamItem> outputs;
  std::size_t next = 0;
  std::uint64_t idleBudget = drainCycles;
  std::uint64_t cycle = 0;
  while (next < stimulus.size() || idleBudget > 0) {
    const bool stalled = stall(cycle);
    const bool feeding = !stalled && next < stimulus.size();
    if (feeding) {
      DFV_CHECK_MSG(stimulus[next].width() == dataWidth_,
                    "stimulus width mismatch at item " << next);
      sim_.setInput(ports_.inData, stimulus[next]);
      sim_.setInputUint(ports_.inValid, 1);
      ++next;
    } else {
      sim_.setInput(ports_.inData, bv::BitVector(dataWidth_));
      sim_.setInputUint(ports_.inValid, 0);
    }
    if (!ports_.stall.empty())
      sim_.setInputUint(ports_.stall, stalled ? 1 : 0);
    sim_.evalCombinational();
    // A stalled cycle freezes the whole interface: the DUT holds its
    // pipeline and the downstream side does not sample (otherwise a held
    // out_valid would be observed repeatedly).
    if (!stalled && !sim_.outputValue(ports_.outValid).isZero())
      outputs.push_back(StreamItem{cycle, sim_.outputValue(ports_.outData)});
    sim_.clockEdge();
    if (next >= stimulus.size()) --idleBudget;
    ++cycle;
  }
  cyclesRun_ = cycle;
  return outputs;
}

}  // namespace dfv::cosim
