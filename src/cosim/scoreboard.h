// Scoreboards: output comparison with timing alignment.
//
// The paper's §2(a): "Temporal differences between when the SLM and
// wrapped-RTL produce outputs means that the procedure that compares the SLM
// outputs with RTL outputs needs to account for the timing differences", and
// §3.2: stalls cause variable latency and can even reorder outputs, which
// "can result in complicated transactors being needed".  Three alignment
// strategies of increasing tolerance:
//
//   CycleExactScoreboard — values must match at identical cycles (only
//     usable when the SLM is fully cycle-accurate);
//   InOrderScoreboard    — stream order must match, timing is free (the
//     common case for untimed/loosely-timed SLMs);
//   OutOfOrderScoreboard — matching by tag inside a bounded window (needed
//     when the RTL completes operations out of order, §3.2).
//
// All scoreboards record per-item latency skew — one entry per *paired*
// reference/DUT item, whether the values matched or not — so benches can
// report the Fig 2 timing-alignment distributions; one-sided items
// (unexpected or missing on the DUT side) contribute no skew.  The same
// policy holds for the maxSkew/meanSkew aggregates.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/check.h"

namespace dfv::cosim {

/// A mismatch record.
struct Mismatch {
  /// What kind of disagreement this record captures.  Only kValueMismatch
  /// carries both sides; the one-sided kinds leave the absent side's value
  /// default-constructed and its timestamp zero rather than fabricating
  /// data.
  enum class Kind {
    kValueMismatch,  ///< paired reference/DUT item with differing values
    kUnexpectedDut,  ///< the DUT produced an item nothing expected
    kMissingDut,     ///< a reference item the DUT never produced
  };

  Kind kind = Kind::kValueMismatch;
  std::uint64_t index = 0;     ///< stream index, cycle, or tag
  std::uint64_t refTime = 0;   ///< when the reference produced it (not
                               ///< meaningful for kUnexpectedDut)
  std::uint64_t dutTime = 0;   ///< when the DUT produced it (not meaningful
                               ///< for kMissingDut)
  bv::BitVector expected;      ///< default-constructed for kUnexpectedDut
  bv::BitVector actual;        ///< default-constructed for kMissingDut

  std::string describe() const;
};

/// Common result counters.
struct ScoreboardStats {
  std::uint64_t matched = 0;
  std::uint64_t mismatched = 0;
  std::uint64_t pendingRef = 0;   ///< reference values never observed
  std::uint64_t pendingDut = 0;   ///< DUT values never expected
  std::int64_t maxSkew = 0;  ///< max |dutTime - refTime| over paired items
  double meanSkew = 0.0;     ///< mean |dutTime - refTime| over paired items

  bool clean() const {
    return mismatched == 0 && pendingRef == 0 && pendingDut == 0;
  }
};

/// Values must agree at the same cycle on both sides.
class CycleExactScoreboard {
 public:
  void expect(std::uint64_t cycle, bv::BitVector value);
  void observe(std::uint64_t cycle, const bv::BitVector& value);
  /// Call when the run ends; flushes unmatched expectations into stats and
  /// into kMissingDut mismatch records.
  ScoreboardStats finish();
  const std::vector<Mismatch>& mismatches() const { return mismatches_; }
  /// Per paired item (dutTime - refTime); identically zero here since
  /// pairing is by cycle, kept for policy uniformity across scoreboards.
  const std::vector<std::int64_t>& skews() const { return skews_; }

 private:
  std::unordered_map<std::uint64_t, bv::BitVector> expected_;
  std::vector<Mismatch> mismatches_;
  std::vector<std::int64_t> skews_;
  ScoreboardStats stats_;
  std::uint64_t dutOnly_ = 0;
  bool finished_ = false;
};

/// Stream-order comparison; timing recorded but not enforced.
class InOrderScoreboard {
 public:
  void expect(bv::BitVector value, std::uint64_t refTime = 0);
  void observe(const bv::BitVector& value, std::uint64_t dutTime = 0);
  ScoreboardStats finish();
  const std::vector<Mismatch>& mismatches() const { return mismatches_; }
  /// Per paired item (dutTime - refTime), for latency-distribution
  /// reporting; value mismatches pair too and are included.
  const std::vector<std::int64_t>& skews() const { return skews_; }

 private:
  struct Pending {
    bv::BitVector value;
    std::uint64_t time;
  };
  std::deque<Pending> queue_;
  std::vector<Mismatch> mismatches_;
  std::vector<std::int64_t> skews_;
  ScoreboardStats stats_;
  std::uint64_t streamIndex_ = 0;
  std::uint64_t dutOnly_ = 0;
  bool finished_ = false;
};

/// Tag-matched comparison for out-of-order completion.
class OutOfOrderScoreboard {
 public:
  /// `window`: max outstanding expectations before expect() refuses (0 =
  /// unbounded).  A small window models the transactor buffering cost the
  /// paper warns about.
  explicit OutOfOrderScoreboard(std::size_t window = 0) : window_(window) {}

  /// Returns false if the window is full (caller must drain first).
  bool expect(std::uint64_t tag, bv::BitVector value,
              std::uint64_t refTime = 0);
  void observe(std::uint64_t tag, const bv::BitVector& value,
               std::uint64_t dutTime = 0);
  ScoreboardStats finish();
  const std::vector<Mismatch>& mismatches() const { return mismatches_; }
  /// Per paired item (dutTime - refTime), in observation order.
  const std::vector<std::int64_t>& skews() const { return skews_; }
  std::size_t outstanding() const { return pending_.size(); }
  /// Number of observations that arrived in a different order than their
  /// expectations (a direct measure of §3.2 out-of-orderness).
  std::uint64_t reorderedCount() const { return reordered_; }

 private:
  struct Pending {
    bv::BitVector value;
    std::uint64_t time;
    std::uint64_t seq;
  };
  std::size_t window_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<Mismatch> mismatches_;
  std::vector<std::int64_t> skews_;
  ScoreboardStats stats_;
  std::uint64_t expectSeq_ = 0;
  std::uint64_t nextExpectedSeq_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t dutOnly_ = 0;
  bool finished_ = false;
};

}  // namespace dfv::cosim
