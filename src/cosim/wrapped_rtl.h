// Wrapped-RTL: transactors around an RTL simulator.
//
// §2: "the actual RTL can be instantiated in another top-level hierarchy
// that places transactors at the RTL inputs and outputs so that the SLM
// input stimulus can be used for RTL simulation. The RTL with transactors is
// called the wrapped-RTL."
//
// The wrapper implements the paper's canonical interface split (§3.2): the
// SLM side presents *parallel* data (whole arrays of samples/pixels) while
// the RTL side consumes a *serial* valid-qualified stream — the transactor
// is the array-to-stream / stream-to-array adapter, including stall
// injection to exercise variable-latency behaviour.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtl/sim.h"

namespace dfv::cosim {

/// Port-name convention binding a streaming RTL block.
struct StreamPorts {
  std::string inData = "in_data";
  std::string inValid = "in_valid";
  std::string outData = "out_data";
  std::string outValid = "out_valid";
  /// Optional stall input ("" = none): when driven high the wrapper asserts
  /// it and the DUT is expected to hold its pipeline.
  std::string stall;
};

/// A timestamped output item collected by the wrapper.
struct StreamItem {
  std::uint64_t cycle;
  bv::BitVector value;
};

/// Policy deciding, per cycle, whether to assert the stall input (and to
/// withhold input data).  Deterministic policies keep runs reproducible.
using StallPolicy = std::function<bool(std::uint64_t cycle)>;

inline StallPolicy noStalls() {
  return [](std::uint64_t) { return false; };
}
/// Pseudo-random stalls with probability numerator/denominator (LCG-based,
/// deterministic in `seed`).
StallPolicy randomStalls(std::uint32_t numerator, std::uint32_t denominator,
                         std::uint64_t seed);

/// Ready/valid streaming wrapper: feeds a parallel buffer of input words
/// into the RTL one per (un-stalled) cycle and collects valid outputs.
class WrappedRtl {
 public:
  WrappedRtl(const rtl::Module& module, StreamPorts ports);

  /// Resets the DUT, streams `stimulus` (one item per un-stalled cycle),
  /// then drains for up to `drainCycles` extra cycles.  Returns all outputs
  /// seen with their cycle stamps.
  std::vector<StreamItem> run(const std::vector<bv::BitVector>& stimulus,
                              std::uint64_t drainCycles = 64,
                              const StallPolicy& stall = noStalls());

  rtl::Simulator& simulator() { return sim_; }
  std::uint64_t cyclesRun() const { return cyclesRun_; }

 private:
  rtl::Simulator sim_;
  StreamPorts ports_;
  unsigned dataWidth_;
  std::uint64_t cyclesRun_ = 0;
};

}  // namespace dfv::cosim
