#include "fp/softfloat.h"

#include <bit>
#include <sstream>

namespace dfv::fp {

namespace {

/// Shift right by `amount`, ORing all shifted-out bits into the LSB
/// ("jamming" — Berkeley-softfloat style sticky preservation).
std::uint64_t shiftRightJam(std::uint64_t v, std::uint64_t amount) {
  if (amount == 0) return v;
  if (amount >= 64) return v != 0 ? 1 : 0;
  const std::uint64_t shifted = v >> amount;
  const std::uint64_t lost = v & ((std::uint64_t{1} << amount) - 1);
  return shifted | (lost != 0 ? 1 : 0);
}

struct Unpacked {
  bool sign;
  std::int64_t exp;       // biased exponent, >= 1 (subnormals use 1)
  std::uint64_t sig;      // significand with hidden bit, << 3 (G/R/S space)
};

/// Rounds (round-to-nearest-even) and packs a finite result.
/// `sig` has the binary point such that a normalized value is in
/// [2^(man+3), 2^(man+4)); exp is the biased exponent.
/// ieee: subnormal underflow + Inf overflow; !ieee: flush + clamp.
std::uint64_t roundPack(Format fmt, bool sign, std::int64_t exp,
                        std::uint64_t sig, bool ieee) {
  const unsigned man = fmt.man;
  const std::uint64_t signBit = std::uint64_t{sign ? 1u : 0u}
                                << (fmt.width() - 1);
  if (exp < 1) {
    if (!ieee) return signBit;  // hardware: flush to zero
    sig = shiftRightJam(sig, static_cast<std::uint64_t>(1 - exp));
    exp = 1;
  }
  // Round to nearest even on the 3 extra bits.
  const std::uint64_t roundBits = sig & 7;
  sig >>= 3;
  if (roundBits > 4 || (roundBits == 4 && (sig & 1))) sig += 1;
  if (sig >= (std::uint64_t{1} << (man + 1))) {
    sig >>= 1;
    ++exp;
  }
  if (sig < (std::uint64_t{1} << man)) {
    // Subnormal (exp was clamped to 1) or exact zero.
    if (!ieee) return signBit;  // flush
    return signBit | sig;       // expField 0
  }
  const std::int64_t maxField = static_cast<std::int64_t>(fmt.maxExpField());
  if (ieee ? (exp >= maxField) : (exp > maxField)) {
    if (ieee)  // overflow rounds to infinity under RNE
      return signBit | (fmt.maxExpField() << man);
    return signBit | (fmt.maxExpField() << man) | fmt.manMask();  // clamp
  }
  return signBit | (static_cast<std::uint64_t>(exp) << man) |
         (sig & fmt.manMask());
}

Unpacked unpackIeee(Format fmt, std::uint64_t bits) {
  Unpacked u;
  u.sign = (bits >> (fmt.width() - 1)) & 1;
  const std::uint64_t e = (bits >> fmt.man) & fmt.maxExpField();
  const std::uint64_t f = bits & fmt.manMask();
  if (e == 0) {
    u.exp = 1;  // subnormal: no hidden bit
    u.sig = f << 3;
  } else {
    u.exp = static_cast<std::int64_t>(e);
    u.sig = ((std::uint64_t{1} << fmt.man) | f) << 3;
  }
  return u;
}

Unpacked unpackHw(Format fmt, std::uint64_t bits) {
  Unpacked u;
  u.sign = (bits >> (fmt.width() - 1)) & 1;
  const std::uint64_t e = (bits >> fmt.man) & fmt.maxExpField();
  const std::uint64_t f = bits & fmt.manMask();
  if (e == 0) {
    u.exp = 1;
    u.sig = 0;  // flush-to-zero: subnormal inputs are zero
  } else {
    u.exp = static_cast<std::int64_t>(e);  // top encoding is a normal number
    u.sig = ((std::uint64_t{1} << fmt.man) | f) << 3;
  }
  return u;
}

/// Core magnitude add/sub shared by IEEE and hardware semantics.
std::uint64_t addCore(Format fmt, Unpacked a, Unpacked b, bool ieee) {
  // Order so |a| >= |b|.
  if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig)) std::swap(a, b);
  const std::uint64_t d = static_cast<std::uint64_t>(a.exp - b.exp);
  const std::uint64_t bSig = shiftRightJam(b.sig, d);
  std::uint64_t sig;
  if (a.sign == b.sign) {
    sig = a.sig + bSig;
  } else {
    sig = a.sig - bSig;
  }
  if (sig == 0) {
    // Exact cancellation: +0 under RNE unless both inputs were negative
    // (that only happens for -0 + -0, since equal-sign operands add).
    const bool zSign = a.sign && b.sign;
    return zSign ? (std::uint64_t{1} << (fmt.width() - 1)) : 0;
  }
  std::int64_t exp = a.exp;
  // Normalize into [2^(man+3), 2^(man+4)).
  const std::uint64_t hi = std::uint64_t{1} << (fmt.man + 4);
  while (sig >= hi) {
    sig = shiftRightJam(sig, 1);
    ++exp;
  }
  while (sig < (hi >> 1)) {
    // Left-normalization stops at exponent 1 for both semantics; IEEE packs
    // what remains as a subnormal, hardware flushes it to zero.
    if (exp <= 1) break;
    sig <<= 1;
    --exp;
  }
  return roundPack(fmt, a.sign, exp, sig, ieee);
}

std::uint64_t mulCore(Format fmt, const Unpacked& a, const Unpacked& b,
                      bool ieee) {
  const bool sign = a.sign != b.sign;
  if (a.sig == 0 || b.sig == 0)
    return sign ? (std::uint64_t{1} << (fmt.width() - 1)) : 0;
  // Normalize subnormal inputs (IEEE path; hw flushed them already).
  Unpacked na = a, nb = b;
  const std::uint64_t normTop = std::uint64_t{1} << (fmt.man + 3);
  while (na.sig < normTop) {
    na.sig <<= 1;
    --na.exp;
  }
  while (nb.sig < normTop) {
    nb.sig <<= 1;
    --nb.exp;
  }
  // Drop the GRS padding for the multiply, reapply after.
  const std::uint64_t sa = na.sig >> 3;  // man+1 bits
  const std::uint64_t sb = nb.sig >> 3;
  const std::uint64_t prod = sa * sb;  // in [2^(2man), 2^(2man+2))
  std::int64_t exp =
      na.exp + nb.exp - static_cast<std::int64_t>(fmt.bias());
  // Normalize prod into [2^(man+3), 2^(man+4)): its MSB sits at bit 2man
  // or 2man+1.
  int shift = static_cast<int>(fmt.man) - 3;
  if (prod >= (std::uint64_t{1} << (2 * fmt.man + 1))) {
    ++exp;
    ++shift;
  }
  const std::uint64_t sig =
      shift >= 0 ? shiftRightJam(prod, static_cast<std::uint64_t>(shift))
                 : (prod << -shift);
  return roundPack(fmt, sign, exp, sig, ieee);
}

}  // namespace

SoftFloat SoftFloat::infinity(Format fmt, bool negative) {
  return fromFields(fmt, negative, fmt.maxExpField(), 0);
}

SoftFloat SoftFloat::quietNaN(Format fmt) {
  return fromFields(fmt, false, fmt.maxExpField(),
                    std::uint64_t{1} << (fmt.man - 1));
}

SoftFloat SoftFloat::fromFields(Format fmt, bool sign, std::uint64_t expField,
                                std::uint64_t frac) {
  DFV_CHECK_MSG(expField <= fmt.maxExpField() && frac <= fmt.manMask(),
                "field out of range");
  const std::uint64_t bits =
      (std::uint64_t{sign ? 1u : 0u} << (fmt.width() - 1)) |
      (expField << fmt.man) | frac;
  return SoftFloat(fmt, bits);
}

SoftFloat SoftFloat::fromFloat(float f) {
  return SoftFloat(Format::binary32(), std::bit_cast<std::uint32_t>(f));
}

float SoftFloat::toFloat() const {
  DFV_CHECK_MSG(fmt_.exp == 8 && fmt_.man == 23, "toFloat needs binary32");
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits_));
}

SoftFloat SoftFloat::operator-() const {
  return SoftFloat(fmt_, bits_ ^ (std::uint64_t{1} << (fmt_.width() - 1)));
}

SoftFloat operator+(const SoftFloat& a, const SoftFloat& b) {
  const Format fmt = a.format();
  DFV_CHECK_MSG(b.format().exp == fmt.exp && b.format().man == fmt.man,
                "format mismatch");
  if (a.isNaN() || b.isNaN()) return SoftFloat::quietNaN(fmt);
  if (a.isInf()) {
    if (b.isInf() && a.sign() != b.sign()) return SoftFloat::quietNaN(fmt);
    return a;
  }
  if (b.isInf()) return b;
  return SoftFloat(fmt, addCore(fmt, unpackIeee(fmt, a.bits()),
                                unpackIeee(fmt, b.bits()), /*ieee=*/true));
}

SoftFloat operator*(const SoftFloat& a, const SoftFloat& b) {
  const Format fmt = a.format();
  DFV_CHECK_MSG(b.format().exp == fmt.exp && b.format().man == fmt.man,
                "format mismatch");
  if (a.isNaN() || b.isNaN()) return SoftFloat::quietNaN(fmt);
  const bool sign = a.sign() != b.sign();
  if (a.isInf() || b.isInf()) {
    if (a.isZero() || b.isZero()) return SoftFloat::quietNaN(fmt);
    return SoftFloat::infinity(fmt, sign);
  }
  return SoftFloat(fmt, mulCore(fmt, unpackIeee(fmt, a.bits()),
                                unpackIeee(fmt, b.bits()), /*ieee=*/true));
}

std::string SoftFloat::describe() const {
  std::ostringstream os;
  os << (sign() ? "-" : "+");
  if (isNaN())
    os << "nan";
  else if (isInf())
    os << "inf";
  else if (isZero())
    os << "0";
  else
    os << (isSubnormal() ? "sub(" : "norm(") << "e=" << expField()
       << ",f=" << fracField() << ")";
  return os.str();
}

std::uint64_t hwAdd(Format fmt, std::uint64_t aBits, std::uint64_t bBits) {
  fmt.check();
  const Unpacked a = unpackHw(fmt, aBits);
  const Unpacked b = unpackHw(fmt, bBits);
  if (a.sig == 0 && b.sig == 0) {
    const bool zSign = a.sign && b.sign;
    return zSign ? (std::uint64_t{1} << (fmt.width() - 1)) : 0;
  }
  if (a.sig == 0) return roundPack(fmt, b.sign, b.exp, b.sig, false);
  if (b.sig == 0) return roundPack(fmt, a.sign, a.exp, a.sig, false);
  return addCore(fmt, a, b, /*ieee=*/false);
}

std::uint64_t hwMul(Format fmt, std::uint64_t aBits, std::uint64_t bBits) {
  fmt.check();
  const Unpacked a = unpackHw(fmt, aBits);
  const Unpacked b = unpackHw(fmt, bBits);
  return mulCore(fmt, a, b, /*ieee=*/false);
}

}  // namespace dfv::fp
