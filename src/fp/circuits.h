// Word-level circuits for floating-point adders and multipliers, for use in
// equivalence checking.
//
// buildIeeeAdder/buildIeeeMultiplier emit the full IEEE-754
// round-to-nearest-even datapaths (subnormals, signed zero, NaN, infinity)
// as ir expressions; buildHwAdder/buildHwMultiplier emit the simplified
// hardware variants (flush-to-zero, no NaN/Inf, clamp on overflow) matching
// fp::hwAdd/fp::hwMul bit-for-bit.  All four are validated exhaustively
// against the software implementations for the 8-bit minifloat format
// (65,536 input pairs each) in tests/fp_test.cpp.
//
// These two circuits are the §3.1.2 experiment: SEC on (IEEE SLM, hardware
// RTL) finds the corner-case divergence, and the recommended input
// constraint (exponents inside a safe band) turns the pair provably
// equivalent.
#pragma once

#include "fp/softfloat.h"
#include "ir/expr.h"

namespace dfv::fp {

/// IEEE-754 adder circuit: result = a + b (RNE).  a/b must be fmt.width()
/// wide scalars.
ir::NodeRef buildIeeeAdder(ir::Context& ctx, Format fmt, ir::NodeRef a,
                           ir::NodeRef b);

/// Simplified hardware adder circuit (bit-exact with fp::hwAdd).
ir::NodeRef buildHwAdder(ir::Context& ctx, Format fmt, ir::NodeRef a,
                         ir::NodeRef b);

/// IEEE-754 multiplier circuit: result = a * b (RNE).  Requires man >= 3.
ir::NodeRef buildIeeeMultiplier(ir::Context& ctx, Format fmt, ir::NodeRef a,
                                ir::NodeRef b);

/// Simplified hardware multiplier circuit (bit-exact with fp::hwMul).
ir::NodeRef buildHwMultiplier(ir::Context& ctx, Format fmt, ir::NodeRef a,
                              ir::NodeRef b);

/// The §3.1.2 input constraint: `x`'s exponent field lies in [lo, hi].
/// With lo >= man+1 and hi <= maxExpField()-2 the IEEE and hardware adders
/// agree on all inputs satisfying the constraint for both operands.
ir::NodeRef buildExponentBandConstraint(ir::Context& ctx, Format fmt,
                                        ir::NodeRef x, std::uint64_t lo,
                                        std::uint64_t hi);

/// A safe band such that adds of in-band operands are bit-exact between
/// IEEE and hardware semantics (no subnormal, overflow, NaN or Inf can
/// arise).
struct SafeBand {
  std::uint64_t lo;
  std::uint64_t hi;
};
SafeBand safeExponentBand(Format fmt);

}  // namespace dfv::fp
