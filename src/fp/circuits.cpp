#include "fp/circuits.h"

namespace dfv::fp {

namespace {

using ir::Context;
using ir::NodeRef;

/// Shared machinery for the floating-point datapath builders: field
/// unpacking, leading-zero counting, round-to-nearest-even and packing for
/// both the IEEE and the simplified-hardware semantics.
class FpBuilderBase {
 protected:
  FpBuilderBase(Context& ctx, Format fmt, bool ieee, unsigned expWorkWidth)
      : x_(ctx), fmt_(fmt), ieee_(ieee) {
    fmt.check();
    W_ = fmt.width();
    M_ = fmt.man;
    SW_ = M_ + 4;        // significand with hidden bit + G/R/S
    XW_ = expWorkWidth;  // exponent work width (field domain)
  }

  struct Fields {
    NodeRef sign;     // 1
    NodeRef expField; // fmt.exp
    NodeRef frac;     // M
    NodeRef eIsZero;  // 1
    NodeRef eIsMax;   // 1
    NodeRef isNaN;    // 1 (kFalse when !ieee)
    NodeRef isInf;    // 1 (kFalse when !ieee)
  };

  Fields fields(NodeRef v) {
    DFV_CHECK_MSG(v->width() == W_, "operand width mismatch for format");
    Fields f;
    f.sign = x_.extract(v, W_ - 1, W_ - 1);
    f.expField = x_.extract(v, W_ - 2, M_);
    f.frac = x_.extract(v, M_ - 1, 0);
    f.eIsZero = x_.eq(f.expField, x_.zero(fmt_.exp));
    f.eIsMax =
        x_.eq(f.expField, x_.constantUint(fmt_.exp, fmt_.maxExpField()));
    if (ieee_) {
      f.isNaN = x_.bitAnd(f.eIsMax, x_.ne(f.frac, x_.zero(M_)));
      f.isInf = x_.bitAnd(f.eIsMax, x_.eq(f.frac, x_.zero(M_)));
    } else {
      f.isNaN = x_.boolConst(false);
      f.isInf = x_.boolConst(false);
    }
    return f;
  }

  /// CLZ over `sig`'s bits, priority to the MSB; result width XW_.
  NodeRef countLeadingZeros(NodeRef sig) {
    const unsigned w = sig->width();
    NodeRef acc = x_.constantUint(XW_, w);
    for (unsigned i = 0; i < w; ++i) {
      NodeRef bit = x_.extract(sig, i, i);
      acc = x_.mux(bit, x_.constantUint(XW_, w - 1 - i), acc);
    }
    return acc;
  }

  NodeRef packZero(NodeRef sign) { return x_.concat(sign, x_.zero(W_ - 1)); }

  NodeRef qNaN() {
    return x_.constantUint(
        W_, (fmt_.maxExpField() << M_) | (std::uint64_t{1} << (M_ - 1)));
  }

  /// Variable shift-right-jam: lshr with all shifted-out bits ORed into the
  /// LSB.  `amount` is XW_-wide.
  NodeRef shiftRightJam(NodeRef sig, NodeRef amount) {
    const unsigned w = sig->width();
    NodeRef amt = x_.resize(amount, w, false);
    NodeRef shifted = x_.lshr(sig, amt);
    // mask = (1 << amount) - 1; shl clamps to 0 at amount >= w, making the
    // mask all-ones — exactly the full-sticky case.
    NodeRef mask = x_.sub(x_.shl(x_.one(w), amt), x_.one(w));
    NodeRef sticky = x_.redOr(x_.bitAnd(sig, mask));
    return x_.bitOr(shifted, x_.zext(sticky, w));
  }

  /// Rounds (RNE) and packs a finite value: `exp` is the biased exponent in
  /// field domain (>= 1), XW_-wide; `sig` is SW_-wide with G/R/S.
  /// IEEE packs subnormals and overflows to Inf; hardware flushes and
  /// clamps.
  NodeRef roundAndPack(NodeRef sign, NodeRef exp, NodeRef sig) {
    NodeRef g = x_.extract(sig, 2, 2);
    NodeRef r = x_.extract(sig, 1, 1);
    NodeRef s = x_.extract(sig, 0, 0);
    NodeRef lsb = x_.extract(sig, 3, 3);
    NodeRef roundUp = x_.bitAnd(g, x_.bitOr(r, x_.bitOr(s, lsb)));
    NodeRef sigQ = x_.extract(sig, SW_ - 1, 3);  // M+1 bits
    NodeRef sigRnd =
        x_.add(x_.zext(sigQ, M_ + 2), x_.zext(roundUp, M_ + 2));
    NodeRef rndOvf = x_.extract(sigRnd, M_ + 1, M_ + 1);
    NodeRef sigF = x_.mux(rndOvf,
                          x_.constantUint(M_ + 1, std::uint64_t{1} << M_),
                          x_.extract(sigRnd, M_, 0));
    NodeRef expF = x_.mux(rndOvf, x_.add(exp, x_.one(XW_)), exp);

    NodeRef frac = x_.extract(sigF, M_ - 1, 0);
    NodeRef isSubnormal = x_.eq(x_.extract(sigF, M_, M_), x_.zero(1));
    NodeRef normal = x_.concat(
        x_.concat(sign, x_.extract(expF, fmt_.exp - 1, 0)), frac);
    const std::uint64_t maxF = fmt_.maxExpField();
    if (ieee_) {
      NodeRef subnormal =
          x_.concat(x_.concat(sign, x_.zero(fmt_.exp)), frac);
      NodeRef inf = x_.concat(
          x_.concat(sign, x_.constantUint(fmt_.exp, maxF)), x_.zero(M_));
      NodeRef overflow = x_.uge(expF, x_.constantUint(XW_, maxF));
      return x_.mux(isSubnormal, subnormal, x_.mux(overflow, inf, normal));
    }
    NodeRef zero = packZero(sign);
    NodeRef clamp = x_.concat(
        x_.concat(sign, x_.constantUint(fmt_.exp, maxF)),
        x_.constant(bv::BitVector::allOnes(M_)));
    NodeRef overflow = x_.ugt(expF, x_.constantUint(XW_, maxF));
    return x_.mux(isSubnormal, zero, x_.mux(overflow, clamp, normal));
  }

  Context& x_;
  Format fmt_;
  bool ieee_;
  unsigned W_, M_, SW_, XW_;
};

/// The adder datapath (IEEE and hardware variants).
class AdderBuilder : private FpBuilderBase {
 public:
  AdderBuilder(Context& ctx, Format fmt, bool ieee)
      : FpBuilderBase(ctx, fmt, ieee, fmt.exp + 2) {}

  NodeRef build(NodeRef a, NodeRef b) {
    const Operand oa = unpack(a);
    const Operand ob = unpack(b);

    // ---- magnitude ordering -------------------------------------------
    NodeRef aBigger = x_.bitOr(
        x_.ugt(oa.exp, ob.exp),
        x_.bitAnd(x_.eq(oa.exp, ob.exp), x_.uge(oa.sig, ob.sig)));
    NodeRef expBig = x_.mux(aBigger, oa.exp, ob.exp);
    NodeRef expSml = x_.mux(aBigger, ob.exp, oa.exp);
    NodeRef sigBig = x_.mux(aBigger, oa.sig, ob.sig);
    NodeRef sigSml = x_.mux(aBigger, ob.sig, oa.sig);
    NodeRef signBig = x_.mux(aBigger, oa.sign, ob.sign);

    // ---- align with sticky (shift-right-jam) --------------------------
    NodeRef d = x_.sub(expBig, expSml);
    NodeRef jammed = shiftRightJam(sigSml, d);

    // ---- add or subtract magnitudes ------------------------------------
    NodeRef sameSign = x_.eq(oa.sign, ob.sign);
    NodeRef bigW = x_.zext(sigBig, SW_ + 1);
    NodeRef smlW = x_.zext(jammed, SW_ + 1);
    NodeRef sum = x_.mux(sameSign, x_.add(bigW, smlW), x_.sub(bigW, smlW));
    NodeRef sumIsZero = x_.eq(sum, x_.zero(SW_ + 1));
    // Exact-cancellation sign: -0 only when both operands are negative.
    NodeRef zeroSign = x_.bitAnd(oa.sign, ob.sign);

    // ---- normalize right on carry-out ----------------------------------
    NodeRef carry = x_.extract(sum, SW_, SW_);
    NodeRef sumLow = x_.extract(sum, SW_ - 1, 0);
    NodeRef srj = x_.bitOr(
        x_.extract(x_.lshr(sum, x_.one(SW_ + 1)), SW_ - 1, 0),
        x_.zext(x_.extract(sum, 0, 0), SW_));
    NodeRef sigR = x_.mux(carry, srj, sumLow);
    NodeRef expR = x_.mux(carry, x_.add(expBig, x_.one(XW_)), expBig);

    // ---- normalize left (bounded by exp = 1) ---------------------------
    NodeRef lz = countLeadingZeros(sigR);
    NodeRef expM1 = x_.sub(expR, x_.one(XW_));
    NodeRef shift = x_.mux(x_.ult(lz, expM1), lz, expM1);
    NodeRef sigN = x_.shl(sigR, x_.resize(shift, SW_, false));
    NodeRef expN = x_.sub(expR, shift);

    NodeRef finite = roundAndPack(signBig, expN, sigN);
    NodeRef result = x_.mux(sumIsZero, packZero(zeroSign), finite);

    if (ieee_) {
      const Fields fa = fields(a);
      const Fields fb = fields(b);
      NodeRef anyNaN = x_.bitOr(
          x_.bitOr(fa.isNaN, fb.isNaN),
          x_.bitAnd(x_.bitAnd(fa.isInf, fb.isInf),
                    x_.bitXor(fa.sign, fb.sign)));
      result = x_.mux(anyNaN, qNaN(),
                      x_.mux(fa.isInf, a, x_.mux(fb.isInf, b, result)));
    }
    return result;
  }

 private:
  struct Operand {
    NodeRef sign;  // 1
    NodeRef exp;   // XW (field domain, subnormals use 1)
    NodeRef sig;   // SW (hidden bit + frac + 3 zero GRS bits)
  };

  Operand unpack(NodeRef v) {
    const Fields f = fields(v);
    Operand o;
    o.sign = f.sign;
    o.exp = x_.mux(f.eIsZero, x_.one(XW_), x_.zext(f.expField, XW_));
    if (ieee_) {
      NodeRef hidden = x_.bitNot(f.eIsZero);
      o.sig = x_.concat(x_.concat(hidden, f.frac), x_.zero(3));
    } else {
      NodeRef normalSig =
          x_.concat(x_.concat(x_.one(1), f.frac), x_.zero(3));
      o.sig = x_.mux(f.eIsZero, x_.zero(SW_), normalSig);
    }
    return o;
  }
};

/// The multiplier datapath (IEEE and hardware variants).
///
/// Exponents are tracked with an offset of kOff so subnormal-input
/// normalization (which drives the mathematical exponent below zero) stays
/// in unsigned arithmetic: eOff = expVal + kOff, with expVal the biased
/// field-domain exponent.
class MulBuilder : private FpBuilderBase {
 public:
  MulBuilder(Context& ctx, Format fmt, bool ieee)
      : FpBuilderBase(ctx, fmt, ieee, fmt.exp + 6) {
    DFV_CHECK_MSG(fmt.man >= 3, "multiplier circuits need man >= 3");
  }

  NodeRef build(NodeRef a, NodeRef b) {
    const Operand oa = unpack(a);
    const Operand ob = unpack(b);
    NodeRef sign = x_.bitXor(oa.sign, ob.sign);
    NodeRef anyZero = x_.bitOr(oa.isZero, ob.isZero);

    // ---- multiply significands -----------------------------------------
    const unsigned PW = 2 * M_ + 2;
    NodeRef prod = x_.mul(x_.zext(oa.sig, PW), x_.zext(ob.sig, PW));
    NodeRef top = x_.extract(prod, PW - 1, PW - 1);

    // eOffRes = eOffA + eOffB - kOff - bias (+1 when the product carried).
    NodeRef eSum = x_.add(oa.eOff, ob.eOff);
    NodeRef eOffRes = x_.sub(
        eSum, x_.constantUint(XW_, kOff() + fmt_.bias()));
    eOffRes = x_.mux(top, x_.add(eOffRes, x_.one(XW_)), eOffRes);

    // Normalize the product into SW_ bits with G/R/S (constant shifts,
    // selected by the carry bit).
    NodeRef sigHi = constJam(prod, M_ - 2);  // top set
    NodeRef sigLo = constJam(prod, M_ - 3);  // top clear
    NodeRef sig = x_.mux(top, sigHi, sigLo);

    // ---- underflow: bring exp up to field value 1 -----------------------
    const std::uint64_t offPlus1 = kOff() + 1;
    NodeRef limit = x_.constantUint(XW_, offPlus1);
    NodeRef isUnder = x_.ult(eOffRes, limit);
    if (ieee_) {
      NodeRef shiftAmt = x_.mux(isUnder, x_.sub(limit, eOffRes), x_.zero(XW_));
      sig = shiftRightJam(sig, shiftAmt);
    }
    NodeRef expField =
        x_.mux(isUnder, x_.one(XW_),
               x_.sub(eOffRes, x_.constantUint(XW_, kOff())));

    NodeRef finite = roundAndPack(sign, expField, sig);
    if (!ieee_) {
      // Hardware: subnormal results flush; an underflowed exponent is zero.
      finite = x_.mux(isUnder, packZero(sign), finite);
    }
    NodeRef result = x_.mux(anyZero, packZero(sign), finite);

    if (ieee_) {
      const Fields fa = fields(a);
      const Fields fb = fields(b);
      NodeRef anyInf = x_.bitOr(fa.isInf, fb.isInf);
      NodeRef anyNaN = x_.bitOr(x_.bitOr(fa.isNaN, fb.isNaN),
                                x_.bitAnd(anyInf, anyZero));
      NodeRef inf = x_.concat(
          x_.concat(sign, x_.constantUint(fmt_.exp, fmt_.maxExpField())),
          x_.zero(M_));
      result = x_.mux(anyNaN, qNaN(), x_.mux(anyInf, inf, result));
    }
    return result;
  }

 private:
  struct Operand {
    NodeRef sign;    // 1
    NodeRef eOff;    // XW: biased exponent + kOff (normalized)
    NodeRef sig;     // M+1 bits, normalized in [2^M, 2^(M+1)) unless zero
    NodeRef isZero;  // 1
  };

  /// Exponent offset keeping eOff arithmetic unsigned: the most negative
  /// mathematical exponent is -2(M-1) - bias + ... for a product of two
  /// deepest subnormals, so 2M + bias covers every case with margin.
  std::uint64_t kOff() const { return 2 * M_ + fmt_.bias(); }

  /// Constant shift-right-jam of `v` by `amount` bits, extracting SW_ bits.
  NodeRef constJam(NodeRef v, unsigned amount) {
    NodeRef shifted =
        x_.lshr(v, x_.constantUint(v->width(), amount));
    NodeRef out = x_.extract(shifted, SW_ - 1, 0);
    if (amount == 0) return out;
    NodeRef lost = x_.extract(v, amount - 1, 0);
    NodeRef sticky = x_.ne(lost, x_.zero(amount));
    return x_.bitOr(out, x_.zext(sticky, SW_));
  }

  Operand unpack(NodeRef v) {
    const Fields f = fields(v);
    Operand o;
    o.sign = f.sign;
    if (ieee_) {
      o.isZero = x_.bitAnd(f.eIsZero, x_.eq(f.frac, x_.zero(M_)));
      // Subnormal input: normalize with CLZ so the hidden bit is set.
      NodeRef lz = countLeadingZeros(f.frac);  // XW wide, over M bits
      NodeRef subSig = x_.shl(
          x_.zext(f.frac, M_ + 1),
          x_.resize(x_.add(lz, x_.one(XW_)), M_ + 1, false));
      NodeRef normSig = x_.concat(x_.one(1), f.frac);
      o.sig = x_.mux(f.eIsZero, subSig, normSig);
      // eOff: normal -> eF + kOff; subnormal -> kOff - lz.
      NodeRef eOffNorm =
          x_.add(x_.zext(f.expField, XW_), x_.constantUint(XW_, kOff()));
      NodeRef eOffSub = x_.sub(x_.constantUint(XW_, kOff()), lz);
      o.eOff = x_.mux(f.eIsZero, eOffSub, eOffNorm);
    } else {
      // Hardware: subnormal inputs flush to zero; top encoding is normal.
      o.isZero = f.eIsZero;
      o.sig = x_.concat(x_.one(1), f.frac);
      o.eOff =
          x_.add(x_.zext(f.expField, XW_), x_.constantUint(XW_, kOff()));
    }
    return o;
  }
};

}  // namespace

ir::NodeRef buildIeeeAdder(ir::Context& ctx, Format fmt, ir::NodeRef a,
                           ir::NodeRef b) {
  return AdderBuilder(ctx, fmt, /*ieee=*/true).build(a, b);
}

ir::NodeRef buildHwAdder(ir::Context& ctx, Format fmt, ir::NodeRef a,
                         ir::NodeRef b) {
  return AdderBuilder(ctx, fmt, /*ieee=*/false).build(a, b);
}

ir::NodeRef buildIeeeMultiplier(ir::Context& ctx, Format fmt, ir::NodeRef a,
                                ir::NodeRef b) {
  return MulBuilder(ctx, fmt, /*ieee=*/true).build(a, b);
}

ir::NodeRef buildHwMultiplier(ir::Context& ctx, Format fmt, ir::NodeRef a,
                              ir::NodeRef b) {
  return MulBuilder(ctx, fmt, /*ieee=*/false).build(a, b);
}

ir::NodeRef buildExponentBandConstraint(ir::Context& ctx, Format fmt,
                                        ir::NodeRef x, std::uint64_t lo,
                                        std::uint64_t hi) {
  ir::NodeRef eF = ctx.extract(x, fmt.width() - 2, fmt.man);
  return ctx.bitAnd(ctx.uge(eF, ctx.constantUint(fmt.exp, lo)),
                    ctx.ule(eF, ctx.constantUint(fmt.exp, hi)));
}

SafeBand safeExponentBand(Format fmt) {
  // lo: deep cancellation of in-band operands still lands at a normal
  // exponent (worst case needs man+2 headroom above the minimum exponent).
  // hi: a carry-out of the top in-band exponent stays below the IEEE
  // Inf/NaN encoding.
  return SafeBand{fmt.man + 2, fmt.maxExpField() - 2};
}

}  // namespace dfv::fp
