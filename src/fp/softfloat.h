// Software floating point: full IEEE-754 and the simplified "hardware"
// variant RTL designers actually build.
//
// The paper's §3.1.2: system-level models use the language's IEEE float
// datatypes, while "RTL designers often do not implement the full IEEE
// standard" because handling normalized/denormalized numbers, NaN and
// infinity "can be prohibitively costly in hardware".  This module provides
// both semantics over one parametric format so the divergence — and the
// constrained-SEC technique that masks it — can be reproduced exactly:
//
//   * SoftFloat: IEEE-754 binary interchange semantics with round-to-
//     nearest-even, subnormals, signed zero, NaN and infinity.
//   * hwAdd/hwMul: same datapath but subnormal inputs/results flush to
//     zero, the top exponent encoding is an ordinary normal number (there
//     is no NaN/Inf), and overflow clamps to the largest finite value.
//
// The two agree bit-exactly whenever inputs and results stay strictly
// normal — which is precisely the input constraint §3.1.2 recommends
// feeding the sequential equivalence checker.
#pragma once

#include <cstdint>
#include <string>

#include "bitvec/bitvector.h"
#include "common/check.h"

namespace dfv::fp {

/// A binary floating-point format: 1 sign + exp + man bits.
/// Supported range: exp in [2, 11], man in [1, 25] (covers binary32 8/23
/// and the 8-bit "minifloat" 4/3 used in the SEC experiments).
struct Format {
  unsigned exp = 8;
  unsigned man = 23;

  unsigned width() const { return 1 + exp + man; }
  std::uint64_t bias() const { return (1ull << (exp - 1)) - 1; }
  std::uint64_t maxExpField() const { return (1ull << exp) - 1; }
  std::uint64_t manMask() const { return (1ull << man) - 1; }

  static Format binary32() { return Format{8, 23}; }
  static Format binary16() { return Format{5, 10}; }
  /// The 8-bit 1/4/3 minifloat used by the FP SEC experiments.
  static Format minifloat() { return Format{4, 3}; }

  void check() const {
    DFV_CHECK_MSG(exp >= 2 && exp <= 11 && man >= 1 && man <= 25,
                  "unsupported float format " << exp << "/" << man);
  }
};

/// An IEEE-754 value of some Format, stored as raw bits.
class SoftFloat {
 public:
  SoftFloat(Format fmt, std::uint64_t bits) : fmt_(fmt), bits_(bits) {
    fmt.check();
    DFV_CHECK_MSG((bits >> fmt.width()) == 0, "bits exceed format width");
  }

  static SoftFloat zero(Format fmt, bool negative = false) {
    return SoftFloat(fmt, negative ? (1ull << (fmt.width() - 1)) : 0);
  }
  static SoftFloat infinity(Format fmt, bool negative);
  static SoftFloat quietNaN(Format fmt);
  /// Packs fields (frac must fit man bits, expField must fit exp bits).
  static SoftFloat fromFields(Format fmt, bool sign, std::uint64_t expField,
                              std::uint64_t frac);
  /// Reinterprets a host float's bits (binary32 only).
  static SoftFloat fromFloat(float f);

  Format format() const { return fmt_; }
  std::uint64_t bits() const { return bits_; }
  bv::BitVector toBitVector() const {
    return bv::BitVector::fromUint(fmt_.width(), bits_);
  }

  bool sign() const { return (bits_ >> (fmt_.width() - 1)) & 1; }
  std::uint64_t expField() const { return (bits_ >> fmt_.man) & fmt_.maxExpField(); }
  std::uint64_t fracField() const { return bits_ & fmt_.manMask(); }

  bool isZero() const { return expField() == 0 && fracField() == 0; }
  bool isSubnormal() const { return expField() == 0 && fracField() != 0; }
  bool isInf() const {
    return expField() == fmt_.maxExpField() && fracField() == 0;
  }
  bool isNaN() const {
    return expField() == fmt_.maxExpField() && fracField() != 0;
  }
  bool isNormal() const {
    return expField() != 0 && expField() != fmt_.maxExpField();
  }

  /// Host-float value (binary32 only; for differential testing).
  float toFloat() const;

  /// IEEE-754 addition with round-to-nearest-even.
  friend SoftFloat operator+(const SoftFloat& a, const SoftFloat& b);
  /// IEEE-754 multiplication with round-to-nearest-even.
  friend SoftFloat operator*(const SoftFloat& a, const SoftFloat& b);
  SoftFloat operator-() const;

  /// Bit equality (distinguishes -0/+0 and NaN payloads).
  friend bool operator==(const SoftFloat& a, const SoftFloat& b) {
    return a.fmt_.exp == b.fmt_.exp && a.fmt_.man == b.fmt_.man &&
           a.bits_ == b.bits_;
  }

  std::string describe() const;

 private:
  Format fmt_;
  std::uint64_t bits_;
};

/// The simplified hardware adder: flush-to-zero, no NaN/Inf encodings (the
/// top exponent is an ordinary value), overflow clamps to the largest
/// finite number.  Bit-exact with IEEE when everything stays normal.
std::uint64_t hwAdd(Format fmt, std::uint64_t aBits, std::uint64_t bBits);
/// The simplified hardware multiplier (same conventions as hwAdd).
std::uint64_t hwMul(Format fmt, std::uint64_t aBits, std::uint64_t bBits);

}  // namespace dfv::fp
