#include "absint/domain.h"

#include <sstream>

#include "common/check.h"

namespace dfv::absint {

using bv::BitVector;

const BitVector& umin(const BitVector& a, const BitVector& b) {
  return a.ult(b) ? a : b;
}

const BitVector& umax(const BitVector& a, const BitVector& b) {
  return a.ult(b) ? b : a;
}

unsigned bitLength(const BitVector& v) {
  return v.width() - v.countLeadingZeros();
}

Fact Fact::top(unsigned width) { return Fact(width); }

Fact Fact::bottom(unsigned width) {
  Fact f(width);
  f.bottom_ = true;
  return f;
}

Fact Fact::constant(const BitVector& v) {
  Fact f(v.width());
  f.kb_.ones = v;
  f.kb_.zeros = ~v;
  f.iv_.lo = v;
  f.iv_.hi = v;
  return f;
}

Fact Fact::interval(const BitVector& lo, const BitVector& hi) {
  DFV_CHECK_MSG(lo.width() == hi.width() && lo.ule(hi),
                "malformed interval bounds");
  Fact f(lo.width());
  f.iv_.lo = lo;
  f.iv_.hi = hi;
  f.reduce();
  return f;
}

Fact Fact::knownBits(const BitVector& zeros, const BitVector& ones) {
  DFV_CHECK_MSG(zeros.width() == ones.width() && (zeros & ones).isZero(),
                "known-bits masks must be disjoint");
  Fact f(zeros.width());
  f.kb_.zeros = zeros;
  f.kb_.ones = ones;
  f.reduce();
  return f;
}

bool Fact::isTop() const {
  return !bottom_ && kb_.zeros.isZero() && kb_.ones.isZero() &&
         iv_.lo.isZero() && iv_.hi.isAllOnes();
}

const BitVector& Fact::constantValue() const {
  DFV_CHECK_MSG(isConstant(), "fact is not a singleton");
  return iv_.lo;
}

bool Fact::contains(const BitVector& v) const {
  if (bottom_ || v.width() != width()) return false;
  if (!(v & kb_.zeros).isZero()) return false;
  if (!(~v & kb_.ones).isZero()) return false;
  return iv_.lo.ule(v) && v.ule(iv_.hi);
}

unsigned Fact::provenLeadingZeros() const {
  if (bottom_) return width();
  return kb_.zeros.isAllOnes() ? width()
                               : (~kb_.zeros).countLeadingZeros();
}

unsigned Fact::provenTrailingZeros() const {
  if (bottom_) return width();
  unsigned n = 0;
  while (n < width() && kb_.zeros.bit(n)) ++n;
  return n;
}

bool Fact::provenZeroRange(unsigned hi, unsigned lo) const {
  DFV_CHECK(hi < width() && lo <= hi);
  if (bottom_) return true;
  for (unsigned i = lo; i <= hi; ++i)
    if (!kb_.zeros.bit(i)) return false;
  return true;
}

Fact Fact::join(const Fact& other) const {
  DFV_CHECK_MSG(width() == other.width(), "joining facts of unequal width");
  if (bottom_) return other;
  if (other.bottom_) return *this;
  Fact f(width());
  f.kb_.zeros = kb_.zeros & other.kb_.zeros;
  f.kb_.ones = kb_.ones & other.kb_.ones;
  f.iv_.lo = umin(iv_.lo, other.iv_.lo);
  f.iv_.hi = umax(iv_.hi, other.iv_.hi);
  f.reduce();
  DFV_CHECK(!f.bottom_);
  return f;
}

Fact Fact::meet(const Fact& other) const {
  DFV_CHECK_MSG(width() == other.width(), "meeting facts of unequal width");
  if (bottom_ || other.bottom_) return bottom(width());
  Fact f(width());
  f.kb_.zeros = kb_.zeros | other.kb_.zeros;
  f.kb_.ones = kb_.ones | other.kb_.ones;
  if (!(f.kb_.zeros & f.kb_.ones).isZero()) return bottom(width());
  f.iv_.lo = umax(iv_.lo, other.iv_.lo);
  f.iv_.hi = umin(iv_.hi, other.iv_.hi);
  if (f.iv_.hi.ult(f.iv_.lo)) return bottom(width());
  f.reduce();
  return f;
}

bool Fact::refines(const Fact& other) const {
  if (bottom_) return true;
  if (other.bottom_) return false;
  if (width() != other.width()) return false;
  // Every bit other proves, *this must prove the same way; our range must
  // sit inside other's.
  if (!(other.kb_.zeros & ~kb_.zeros).isZero()) return false;
  if (!(other.kb_.ones & ~kb_.ones).isZero()) return false;
  return other.iv_.lo.ule(iv_.lo) && iv_.hi.ule(other.iv_.hi);
}

void Fact::reduce() {
  if (bottom_) return;
  // Loop until stable: each direction only tightens, and the lattice is
  // finite, but two passes already reach a fixpoint for every case the
  // transfer functions produce; the loop guard is just insurance.
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    // Known bits clamp the interval: `ones` is the least member of the
    // masks' concretization, ~zeros the greatest.
    const BitVector kbMin = kb_.ones;
    const BitVector kbMax = ~kb_.zeros;
    if (iv_.lo.ult(kbMin)) {
      iv_.lo = kbMin;
      changed = true;
    }
    if (kbMax.ult(iv_.hi)) {
      iv_.hi = kbMax;
      changed = true;
    }
    if (iv_.hi.ult(iv_.lo)) {
      bottom_ = true;
      return;
    }
    // The common leading prefix of lo and hi is known: every value between
    // them shares it.
    const BitVector diff = iv_.lo ^ iv_.hi;
    const unsigned firstDiff = bitLength(diff);  // bits >= firstDiff agree
    for (unsigned i = firstDiff; i < width(); ++i) {
      if (iv_.lo.bit(i)) {
        if (!kb_.ones.bit(i)) {
          kb_.ones.setBit(i, true);
          changed = true;
        }
      } else {
        if (!kb_.zeros.bit(i)) {
          kb_.zeros.setBit(i, true);
          changed = true;
        }
      }
    }
    if (!(kb_.zeros & kb_.ones).isZero()) {
      bottom_ = true;
      return;
    }
    if (!changed) return;
  }
}

std::string Fact::str() const {
  if (bottom_) return "<unreachable>";
  std::ostringstream os;
  os << '[' << iv_.lo.toString(16) << ',' << iv_.hi.toString(16) << ']';
  os << " bits=";
  if (width() <= 64) {
    for (unsigned i = width(); i-- > 0;) {
      os << (kb_.zeros.bit(i) ? '0' : kb_.ones.bit(i) ? '1' : '?');
      if (i != 0 && i % 4 == 0) os << '_';
    }
  } else {
    os << "zeros:" << kb_.zeros.toString(16) << " ones:"
       << kb_.ones.toString(16);
  }
  return os.str();
}

}  // namespace dfv::absint
