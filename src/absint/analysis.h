// Word-level abstract interpretation over a TransitionSystem.
//
// Computes one Fact per IR node (for arrays: one element-level Fact) and one
// Fact per state variable describing every value the variable can take in any
// state reachable from reset, under arbitrary inputs.  The state facts are a
// classic dataflow fixpoint: seeded from the init values, transferred through
// the next-state functions, joined, and widened once the iteration count
// passes Options::widenAfter.  Widening snaps the hull to the nearest
// program constants (widening with thresholds — how a saturate-at-N counter
// converges to [0, N]), falling back to the known-bits hull, whose finite
// height bounds the run.
//
// Facts are *reachability* facts: they hold on every concrete trace that
// starts at reset, but NOT in an arbitrary symbolic state.  Consumers that
// reason from symbolic starts (the SEC induction step) must not use them —
// see absint/simplify.h and the CLAUDE.md invariant.
//
// Environment constraints are ignored (dropping assumptions only enlarges
// the reachable set, so every fact stays sound).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "absint/domain.h"
#include "ir/transition_system.h"

namespace dfv::absint {

struct Options {
  /// Fixpoint iterations before interval widening kicks in.
  unsigned widenAfter = 16;
  /// Hard cap; if still unstable, every state fact is forced to top.
  unsigned maxIterations = 256;
  /// Node-visit budget for re-evaluating a mux arm under facts refined by
  /// the selector predicate (clamp / saturate idioms).  Exhausting it falls
  /// back to the unrefined fact, which is always sound.
  unsigned refineBudget = 512;
};

class Analysis {
 public:
  /// Runs the analysis to fixpoint.  `ts` must validate().
  static Analysis run(const ir::TransitionSystem& ts,
                      const Options& opts = Options());

  /// Fact for `n` (element-level for array-sorted nodes).  Nodes outside the
  /// analyzed cones get top — always sound.
  Fact fact(ir::NodeRef n) const;
  bool hasFact(ir::NodeRef n) const { return facts_.count(n) != 0; }

  /// Reachable-value fact for a state variable, by its current-state leaf.
  Fact stateFact(ir::NodeRef currentLeaf) const;

  unsigned iterations() const { return iterations_; }
  bool converged() const { return converged_; }
  bool widened() const { return widened_; }
  const Options& options() const { return opts_; }

  /// Sum of knownBitCount() over every visited node — a cheap precision
  /// metric for stats and benchmarks.
  std::uint64_t totalKnownBits() const;

  /// Exports the state fixpoint as 1-bit candidate predicates over the
  /// scalar state leaves of `ts` (which must be the system this Analysis
  /// ran on): interval bounds as `lo <= s` / `s <= hi` and known-bits
  /// masks as `(s & zeros) == 0` / `(s & ones) == ones`, emitted only when
  /// non-trivial.  Order is deterministic: ts.states() order, bounds before
  /// masks.  These are *reachability* facts, NOT sound for induction — the
  /// only sanctioned path into an induction hypothesis is certification
  /// through dfv::inv (see CLAUDE.md).
  std::vector<ir::NodeRef> statePredicates(
      const ir::TransitionSystem& ts) const;

  /// Annotation hook for ir::printExpr / printTransitionSystem: returns the
  /// node's fact string, or "" when nothing beyond top is known.  The
  /// returned callable references this Analysis and must not outlive it.
  std::function<std::string(ir::NodeRef)> annotator() const;

 private:
  explicit Analysis(const Options& opts) : opts_(opts) {}

  /// One evaluation context: a memo table plus (for mux-arm re-evaluation)
  /// an overlay of predicate-refined facts, a fallback scope, and a shared
  /// node-visit budget.
  struct Scope {
    std::unordered_map<ir::NodeRef, Fact> memo;
    const std::unordered_map<ir::NodeRef, Fact>* overlay = nullptr;
    Scope* base = nullptr;
    unsigned* budget = nullptr;  // nullptr = unlimited (the root scope)
  };

  Fact evalNode(ir::NodeRef n, Scope& scope);
  Fact evalMux(ir::NodeRef n, Scope& scope);
  Fact evalArm(ir::NodeRef arm,
               const std::unordered_map<ir::NodeRef, Fact>& refined,
               Scope& scope);
  void deriveRefinements(ir::NodeRef sel, Scope& scope,
                         std::unordered_map<ir::NodeRef, Fact>& thenMap,
                         std::unordered_map<ir::NodeRef, Fact>& elseMap);

  Options opts_;
  std::unordered_map<ir::NodeRef, Fact> facts_;
  std::unordered_map<ir::NodeRef, Fact> stateFacts_;
  unsigned iterations_ = 0;
  bool converged_ = true;
  bool widened_ = false;
};

}  // namespace dfv::absint
