// The abstract domain for word-level static analysis: a reduced product of
// known-bits (per-bit proven 0/1 masks) and unsigned intervals.
//
// The paper's §3 divergence catalog is dominated by semantic width hazards —
// truncation, overflow wrap-around, reset-divergent state — that no purely
// structural rule can see.  This domain is the vocabulary for proving the
// facts those hazards hinge on: "the top five bits of this accumulator are
// always zero", "this saturating counter never exceeds 9".  dfv::absint sits
// directly above dfv::ir and feeds two consumers: the SEC engine's
// verdict-preserving simplification pass (absint/simplify.h) and the
// semantic design rules in dfv::drc.
//
// Soundness contract (property-tested exhaustively at small widths in
// tests/absint_test.cpp): a Fact denotes a set of bit-vector values, and
// every transfer function over-approximates the concrete ir::Evaluator —
// the concrete result is always a member of the abstract result.
#pragma once

#include <string>

#include "bitvec/bitvector.h"

namespace dfv::absint {

/// Per-bit knowledge: `zeros` masks bits proven 0, `ones` bits proven 1.
/// The two masks are always disjoint for a non-empty fact.
struct KnownBits {
  bv::BitVector zeros;
  bv::BitVector ones;
};

/// Inclusive unsigned range [lo, hi] with lo <= hi (unsigned order).
struct Interval {
  bv::BitVector lo;
  bv::BitVector hi;
};

/// One abstract value: the set of `width`-bit vectors consistent with both
/// the known-bits masks and the interval.  The empty set (bottom) arises
/// only from meets with contradictory branch predicates — i.e. under
/// provably dead mux arms — never from joins or transfer functions.
class Fact {
 public:
  /// All `width`-bit values.
  static Fact top(unsigned width);
  /// Exactly {v}.
  static Fact constant(const bv::BitVector& v);
  /// [lo, hi] with the implied known bits (common leading prefix).
  static Fact interval(const bv::BitVector& lo, const bv::BitVector& hi);
  /// Values matching the masks, with the implied interval.
  static Fact knownBits(const bv::BitVector& zeros, const bv::BitVector& ones);
  /// The empty set.
  static Fact bottom(unsigned width);

  unsigned width() const { return kb_.zeros.width(); }
  bool isBottom() const { return bottom_; }
  bool isTop() const;
  /// Singleton set?
  bool isConstant() const { return !bottom_ && iv_.lo == iv_.hi; }
  /// Requires isConstant().
  const bv::BitVector& constantValue() const;

  const KnownBits& kb() const { return kb_; }
  const Interval& iv() const { return iv_; }

  /// Membership test (the property the differential tests sweep).
  bool contains(const bv::BitVector& v) const;

  /// Number of bits proven (0 or 1).
  unsigned knownBitCount() const {
    return bottom_ ? width() : kb_.zeros.popcount() + kb_.ones.popcount();
  }
  /// Number of leading bits proven zero.
  unsigned provenLeadingZeros() const;
  /// Number of trailing bits proven zero.
  unsigned provenTrailingZeros() const;
  /// True when bits [hi:lo] are all proven zero.
  bool provenZeroRange(unsigned hi, unsigned lo) const;

  /// Least upper bound (set union, rounded up to the domain).
  Fact join(const Fact& other) const;
  /// Greatest lower bound (set intersection, may be bottom).
  Fact meet(const Fact& other) const;
  /// Containment in the abstract order: every value of *this is allowed by
  /// `other`.  (Used by tests; not a set-equality check.)
  bool refines(const Fact& other) const;

  /// "[0x0,0x7f8] bits=0000_0???_????_?000" (bit pattern for narrow widths,
  /// mask pair for wide ones) — the evidence string DRC diagnostics attach.
  std::string str() const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.bottom_ == b.bottom_ && a.kb_.zeros == b.kb_.zeros &&
           a.kb_.ones == b.kb_.ones && a.iv_.lo == b.iv_.lo &&
           a.iv_.hi == b.iv_.hi;
  }

 private:
  explicit Fact(unsigned width)
      : kb_{bv::BitVector(width), bv::BitVector(width)},
        iv_{bv::BitVector(width), bv::BitVector::allOnes(width)} {}
  /// Mutual refinement of the two components (reduced product): known bits
  /// clamp the interval, the interval's common lo/hi prefix becomes known
  /// bits.  Detects emptiness.
  void reduce();

  KnownBits kb_;
  Interval iv_;
  bool bottom_ = false;
};

/// min/max in the unsigned order (operands must share a width).
const bv::BitVector& umin(const bv::BitVector& a, const bv::BitVector& b);
const bv::BitVector& umax(const bv::BitVector& a, const bv::BitVector& b);
/// Position of the highest set bit plus one; 0 for the zero vector.
unsigned bitLength(const bv::BitVector& v);

}  // namespace dfv::absint
