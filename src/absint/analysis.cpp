#include "absint/analysis.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace dfv::absint {
namespace {

using bv::BitVector;
using ir::Node;
using ir::NodeRef;
using ir::Op;

BitVector bvOne(unsigned w) { return BitVector::fromUint(w, 1); }

// ----- transfer functions -------------------------------------------------
//
// Each takes operand Facts (none bottom — the caller propagates bottom) and
// returns an over-approximation of the op.  Interval and known-bits parts
// are computed independently and combined with meet; the intersection of two
// over-approximations of a non-empty set is never empty.

/// Exact known-bits for a + b (or a - b = a + ~b + 1): walk the bits tracking
/// the set of possible carries.
KnownBits addKnownBits(const Fact& a, const Fact& b, bool isSub) {
  const unsigned w = a.width();
  KnownBits out{BitVector(w), BitVector(w)};
  bool cCan0 = !isSub, cCan1 = isSub;  // carry-in: 0 for add, 1 for a + ~b + 1
  for (unsigned i = 0; i < w; ++i) {
    const bool aCan0 = !a.kb().ones.bit(i), aCan1 = !a.kb().zeros.bit(i);
    // For subtraction the second operand is ~b, so its possible bit values
    // are b's, inverted.
    const bool bCan0 =
        isSub ? !b.kb().zeros.bit(i) : !b.kb().ones.bit(i);
    const bool bCan1 =
        isSub ? !b.kb().ones.bit(i) : !b.kb().zeros.bit(i);
    bool sCan0 = false, sCan1 = false, coCan0 = false, coCan1 = false;
    for (int ai = 0; ai < 2; ++ai) {
      if (!(ai ? aCan1 : aCan0)) continue;
      for (int bi = 0; bi < 2; ++bi) {
        if (!(bi ? bCan1 : bCan0)) continue;
        for (int ci = 0; ci < 2; ++ci) {
          if (!(ci ? cCan1 : cCan0)) continue;
          const int sum = ai + bi + ci;
          ((sum & 1) ? sCan1 : sCan0) = true;
          ((sum >= 2) ? coCan1 : coCan0) = true;
        }
      }
    }
    if (!sCan1) out.zeros.setBit(i, true);
    if (!sCan0) out.ones.setBit(i, true);
    cCan0 = coCan0;
    cCan1 = coCan1;
  }
  return out;
}

Fact transferAddSub(const Fact& a, const Fact& b, bool isSub) {
  const unsigned w = a.width();
  const KnownBits kb = addKnownBits(a, b, isSub);
  Fact f = Fact::knownBits(kb.zeros, kb.ones);
  if (!isSub) {
    // Sum bounds at w+1 bits; if both carry out identically the mod-2^w
    // images stay ordered.
    const BitVector lo = a.iv().lo.zext(w + 1) + b.iv().lo.zext(w + 1);
    const BitVector hi = a.iv().hi.zext(w + 1) + b.iv().hi.zext(w + 1);
    if (lo.bit(w) == hi.bit(w))
      f = f.meet(Fact::interval(lo.trunc(w), hi.trunc(w)));
  } else {
    // Never borrows, or always borrows: either way the endpoint images are
    // ordered (lo+b.lo <= hi+b.hi).
    if (b.iv().hi.ule(a.iv().lo) || a.iv().hi.ult(b.iv().lo))
      f = f.meet(
          Fact::interval(a.iv().lo - b.iv().hi, a.iv().hi - b.iv().lo));
  }
  return f;
}

Fact transferMul(const Fact& a, const Fact& b) {
  const unsigned w = a.width();
  if (a.isConstant() && b.isConstant())
    return Fact::constant(a.constantValue() * b.constantValue());
  Fact f = Fact::top(w);
  if (bitLength(a.iv().hi.mulFull(b.iv().hi)) <= w)
    f = f.meet(Fact::interval(a.iv().lo * b.iv().lo, a.iv().hi * b.iv().hi));
  const unsigned tz = std::min(
      w, a.provenTrailingZeros() + b.provenTrailingZeros());
  if (tz > 0) {
    BitVector zeros(w);
    for (unsigned i = 0; i < tz; ++i) zeros.setBit(i, true);
    f = f.meet(Fact::knownBits(zeros, BitVector(w)));
  }
  return f;
}

Fact transferUDiv(const Fact& a, const Fact& b) {
  const unsigned w = a.width();
  Fact r = Fact::bottom(w);
  if (!b.iv().hi.isZero()) {
    const BitVector bLo = b.iv().lo.isZero() ? bvOne(w) : b.iv().lo;
    r = r.join(
        Fact::interval(a.iv().lo.udiv(b.iv().hi), a.iv().hi.udiv(bLo)));
  }
  if (b.iv().lo.isZero())  // totalized: x udiv 0 = all-ones
    r = r.join(Fact::constant(BitVector::allOnes(w)));
  return r;
}

Fact transferURem(const Fact& a, const Fact& b) {
  const unsigned w = a.width();
  Fact r = Fact::bottom(w);
  if (!b.iv().hi.isZero())
    r = r.join(Fact::interval(
        BitVector(w), umin(a.iv().hi, b.iv().hi - bvOne(w))));
  if (b.iv().lo.isZero())  // totalized: x urem 0 = x
    r = r.join(a);
  return r;
}

bool signProvenZero(const Fact& f) {
  return f.kb().zeros.bit(f.width() - 1);
}
bool signProvenOne(const Fact& f) { return f.kb().ones.bit(f.width() - 1); }

Fact transferBitwise(Op op, const Fact& a, const Fact& b) {
  const unsigned w = a.width();
  KnownBits kb{BitVector(w), BitVector(w)};
  Fact f = Fact::top(w);
  switch (op) {
    case Op::kAnd:
      kb.zeros = a.kb().zeros | b.kb().zeros;
      kb.ones = a.kb().ones & b.kb().ones;
      f = Fact::knownBits(kb.zeros, kb.ones);
      // x & y is no larger than either operand.
      f = f.meet(Fact::interval(BitVector(w),
                                umin(a.iv().hi, b.iv().hi)));
      break;
    case Op::kOr:
      kb.zeros = a.kb().zeros & b.kb().zeros;
      kb.ones = a.kb().ones | b.kb().ones;
      f = Fact::knownBits(kb.zeros, kb.ones);
      // x | y is no smaller than either operand.
      f = f.meet(Fact::interval(umax(a.iv().lo, b.iv().lo),
                                BitVector::allOnes(w)));
      break;
    case Op::kXor:
      kb.zeros = (a.kb().zeros & b.kb().zeros) | (a.kb().ones & b.kb().ones);
      kb.ones = (a.kb().zeros & b.kb().ones) | (a.kb().ones & b.kb().zeros);
      f = Fact::knownBits(kb.zeros, kb.ones);
      break;
    default:
      DFV_CHECK_MSG(false, "not a bitwise binary op");
  }
  return f;
}

Fact shiftByConst(Op op, const Fact& a, unsigned c) {
  const unsigned w = a.width();
  const BitVector allOnes = BitVector::allOnes(w);
  Fact f = Fact::top(w);
  switch (op) {
    case Op::kShl: {
      const BitVector zeros = a.kb().zeros.shl(c) | ~allOnes.shl(c);
      f = Fact::knownBits(zeros, a.kb().ones.shl(c));
      if (bitLength(a.iv().hi) + c <= w)
        f = f.meet(Fact::interval(a.iv().lo.shl(c), a.iv().hi.shl(c)));
      break;
    }
    case Op::kLShr: {
      const BitVector zeros = a.kb().zeros.lshr(c) | ~allOnes.lshr(c);
      f = Fact::knownBits(zeros, a.kb().ones.lshr(c));
      f = f.meet(Fact::interval(a.iv().lo.lshr(c), a.iv().hi.lshr(c)));
      break;
    }
    case Op::kAShr: {
      // ashr of the masks replicates each mask's own sign bit, which is set
      // exactly when the operand's sign is proven — so this is precise for
      // known signs and conservative (unknown high bits) otherwise.
      f = Fact::knownBits(a.kb().zeros.ashr(c), a.kb().ones.ashr(c));
      if (a.iv().lo.msb() == a.iv().hi.msb())
        f = f.meet(Fact::interval(a.iv().lo.ashr(c), a.iv().hi.ashr(c)));
      break;
    }
    default:
      DFV_CHECK_MSG(false, "not a shift op");
  }
  return f;
}

Fact transferShift(Op op, const Fact& a, const Fact& amt) {
  const unsigned w = a.width();
  // Effective shift amounts clamp at the operand width, so the amount range
  // collapses to at most w+1 cases; join the constant-shift transfer over
  // each one.
  const auto clampAmt = [&](const BitVector& v) -> unsigned {
    if (bitLength(v) > 32) return w;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(v.toUint64(), w));
  };
  const unsigned lo = clampAmt(amt.iv().lo);
  const unsigned hi = clampAmt(amt.iv().hi);
  Fact r = Fact::bottom(w);
  for (unsigned c = lo; c <= hi; ++c) r = r.join(shiftByConst(op, a, c));
  return r;
}

/// Can the two facts be proven to never share a value?
bool provenDisjoint(const Fact& a, const Fact& b) {
  if (a.iv().hi.ult(b.iv().lo) || b.iv().hi.ult(a.iv().lo)) return true;
  return !((a.kb().zeros & b.kb().ones) | (a.kb().ones & b.kb().zeros))
              .isZero();
}

/// -1 unknown, else 0/1.
int decideCompare(Op op, const Fact& a, const Fact& b) {
  switch (op) {
    case Op::kEq:
      if (provenDisjoint(a, b)) return 0;
      if (a.isConstant() && b.isConstant() &&
          a.constantValue() == b.constantValue())
        return 1;
      return -1;
    case Op::kNe: {
      const int eq = decideCompare(Op::kEq, a, b);
      return eq < 0 ? -1 : 1 - eq;
    }
    case Op::kULt:
      if (a.iv().hi.ult(b.iv().lo)) return 1;
      if (b.iv().hi.ule(a.iv().lo)) return 0;
      return -1;
    case Op::kULe:
      if (a.iv().hi.ule(b.iv().lo)) return 1;
      if (b.iv().hi.ult(a.iv().lo)) return 0;
      return -1;
    case Op::kSLt:
    case Op::kSLe: {
      const bool aKnown = signProvenZero(a) || signProvenOne(a);
      const bool bKnown = signProvenZero(b) || signProvenOne(b);
      if (!aKnown || !bKnown) return -1;
      const bool aNeg = signProvenOne(a), bNeg = signProvenOne(b);
      if (aNeg != bNeg) return aNeg ? 1 : 0;
      // Same sign: two's-complement order matches unsigned order.
      return decideCompare(op == Op::kSLt ? Op::kULt : Op::kULe, a, b);
    }
    default:
      DFV_CHECK_MSG(false, "not a comparison op");
  }
}

Fact transferExtend(Op op, const Fact& a, unsigned newWidth) {
  const unsigned w = a.width();
  if (newWidth == w) return a;
  if (op == Op::kZExt) {
    const BitVector zeros =
        a.kb().zeros.zext(newWidth) | BitVector::allOnes(newWidth).shl(w);
    Fact f = Fact::knownBits(zeros, a.kb().ones.zext(newWidth));
    return f.meet(
        Fact::interval(a.iv().lo.zext(newWidth), a.iv().hi.zext(newWidth)));
  }
  // Sign-extending the masks replicates each mask's sign bit — precise when
  // the operand sign is proven, conservative otherwise.
  Fact f = Fact::knownBits(a.kb().zeros.sext(newWidth),
                           a.kb().ones.sext(newWidth));
  if (a.iv().lo.msb() == a.iv().hi.msb())
    f = f.meet(
        Fact::interval(a.iv().lo.sext(newWidth), a.iv().hi.sext(newWidth)));
  return f;
}

Fact transferReduction(Op op, const Fact& a) {
  switch (op) {
    case Op::kRedAnd:
      if (!a.iv().hi.isAllOnes() || !(a.kb().zeros.isZero()))
        return Fact::constant(BitVector::fromUint(1, 0));
      if (a.iv().lo.isAllOnes())
        return Fact::constant(BitVector::fromUint(1, 1));
      return Fact::top(1);
    case Op::kRedOr:
      if (a.iv().hi.isZero()) return Fact::constant(BitVector::fromUint(1, 0));
      if (!a.iv().lo.isZero() || !a.kb().ones.isZero())
        return Fact::constant(BitVector::fromUint(1, 1));
      return Fact::top(1);
    case Op::kRedXor:
      if (a.isConstant())
        return Fact::constant(
            BitVector::fromUint(1, a.constantValue().reduceXor() ? 1 : 0));
      return Fact::top(1);
    default:
      DFV_CHECK_MSG(false, "not a reduction op");
  }
}

/// Dispatch for every op except leaves and kMux (handled by the evaluator).
Fact transfer(NodeRef n, const std::vector<Fact>& f) {
  const unsigned w = n->type().width;
  for (const Fact& opf : f)
    if (opf.isBottom()) return Fact::bottom(w);
  switch (n->op()) {
    case Op::kAdd:
      return transferAddSub(f[0], f[1], /*isSub=*/false);
    case Op::kSub:
      return transferAddSub(f[0], f[1], /*isSub=*/true);
    case Op::kNeg:
      return transferAddSub(Fact::constant(BitVector(w)), f[0],
                            /*isSub=*/true);
    case Op::kMul:
      return transferMul(f[0], f[1]);
    case Op::kUDiv:
      return transferUDiv(f[0], f[1]);
    case Op::kURem:
      return transferURem(f[0], f[1]);
    case Op::kSDiv:
    case Op::kSRem:
      // Precise only on the provably non-negative, non-zero-divisor
      // fragment, where the signed ops coincide with the unsigned ones.
      if (w >= 2 && signProvenZero(f[0]) && signProvenZero(f[1]) &&
          !f[1].iv().lo.isZero())
        return n->op() == Op::kSDiv ? transferUDiv(f[0], f[1])
                                    : transferURem(f[0], f[1]);
      return Fact::top(w);
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return transferBitwise(n->op(), f[0], f[1]);
    case Op::kNot: {
      Fact r = Fact::knownBits(f[0].kb().ones, f[0].kb().zeros);
      return r.meet(Fact::interval(~f[0].iv().hi, ~f[0].iv().lo));
    }
    case Op::kShl:
    case Op::kLShr:
    case Op::kAShr:
      return transferShift(n->op(), f[0], f[1]);
    case Op::kEq:
    case Op::kNe:
    case Op::kULt:
    case Op::kULe:
    case Op::kSLt:
    case Op::kSLe: {
      const int d = decideCompare(n->op(), f[0], f[1]);
      return d < 0 ? Fact::top(1)
                   : Fact::constant(BitVector::fromUint(1, d));
    }
    case Op::kConcat: {
      Fact r = Fact::knownBits(
          BitVector::concat(f[0].kb().zeros, f[1].kb().zeros),
          BitVector::concat(f[0].kb().ones, f[1].kb().ones));
      // value = hi * 2^wlo + lo: the parts are independent, so the bound
      // concatenations are exact.
      return r.meet(Fact::interval(
          BitVector::concat(f[0].iv().lo, f[1].iv().lo),
          BitVector::concat(f[0].iv().hi, f[1].iv().hi)));
    }
    case Op::kExtract: {
      const unsigned hi = n->attr0(), lo = n->attr1();
      Fact r = Fact::knownBits(f[0].kb().zeros.extract(hi, lo),
                               f[0].kb().ones.extract(hi, lo));
      if (lo == 0 && bitLength(f[0].iv().hi) <= hi + 1)
        r = r.meet(Fact::interval(f[0].iv().lo.trunc(hi + 1),
                                  f[0].iv().hi.trunc(hi + 1)));
      return r;
    }
    case Op::kZExt:
    case Op::kSExt:
      return transferExtend(n->op(), f[0], n->attr0());
    case Op::kRedAnd:
    case Op::kRedOr:
    case Op::kRedXor:
      return transferReduction(n->op(), f[0]);
    case Op::kArrayRead:
      // Element-level fact of the array covers every element, including the
      // element-0 read the totalized out-of-range semantics produce.
      return f[0];
    case Op::kArrayWrite:
      // Each element afterwards is either an old element or the written
      // value (out-of-range writes are no-ops, covered by the old fact).
      return f[0].join(f[2]);
    default:
      DFV_CHECK_MSG(false, "unhandled op in absint transfer: "
                               << ir::opName(n->op()));
  }
}

/// Element-level fact of a state variable's reset value.
Fact initFact(const ir::StateVar& sv) {
  if (!sv.init.isArray) return Fact::constant(sv.init.scalar);
  Fact f = Fact::bottom(sv.current->type().width);
  for (const BitVector& elem : sv.init.array)
    f = f.join(Fact::constant(elem));
  return f;
}

/// Removes a single excluded constant from a fact by trimming an endpoint.
Fact excludeConstant(const Fact& f, const BitVector& c) {
  if (!f.contains(c)) return f;
  if (f.isConstant()) return Fact::bottom(f.width());
  // Non-constant, so lo < hi; the trimmed endpoint never wraps.
  if (f.iv().lo == c)
    return f.meet(Fact::interval(c + bvOne(f.width()), f.iv().hi));
  if (f.iv().hi == c)
    return f.meet(Fact::interval(f.iv().lo, c - bvOne(f.width())));
  return f;
}

}  // namespace

Fact Analysis::fact(ir::NodeRef n) const {
  const auto it = facts_.find(n);
  return it != facts_.end() ? it->second : Fact::top(n->type().width);
}

Fact Analysis::stateFact(ir::NodeRef currentLeaf) const {
  DFV_CHECK_MSG(currentLeaf->op() == Op::kState,
                "stateFact requires a state leaf");
  const auto it = stateFacts_.find(currentLeaf);
  return it != stateFacts_.end() ? it->second
                                 : Fact::top(currentLeaf->type().width);
}

std::uint64_t Analysis::totalKnownBits() const {
  std::uint64_t total = 0;
  for (const auto& [n, f] : facts_) total += f.knownBitCount();
  return total;
}

std::vector<ir::NodeRef> Analysis::statePredicates(
    const ir::TransitionSystem& ts) const {
  std::vector<ir::NodeRef> preds;
  ir::Context& ctx = ts.ctx();
  for (const auto& sv : ts.states()) {
    if (sv.init.isArray) continue;
    const Fact f = stateFact(sv.current);
    if (f.isTop() || f.isBottom()) continue;
    const unsigned w = f.width();
    const ir::NodeRef s = sv.current;
    if (!f.iv().lo.isZero())
      preds.push_back(ctx.ule(ctx.constant(f.iv().lo), s));
    if (!f.iv().hi.isAllOnes())
      preds.push_back(ctx.ule(s, ctx.constant(f.iv().hi)));
    if (!f.kb().zeros.isZero())
      preds.push_back(
          ctx.eq(ctx.bitAnd(s, ctx.constant(f.kb().zeros)), ctx.zero(w)));
    if (!f.kb().ones.isZero())
      preds.push_back(ctx.eq(ctx.bitAnd(s, ctx.constant(f.kb().ones)),
                             ctx.constant(f.kb().ones)));
  }
  return preds;
}

std::function<std::string(ir::NodeRef)> Analysis::annotator() const {
  return [this](ir::NodeRef n) -> std::string {
    const auto it = facts_.find(n);
    if (it == facts_.end() || it->second.isTop()) return std::string();
    return it->second.str();
  };
}

Fact Analysis::evalNode(ir::NodeRef n, Scope& scope) {
  if (scope.overlay) {
    const auto it = scope.overlay->find(n);
    if (it != scope.overlay->end()) return it->second;
  }
  if (const auto it = scope.memo.find(n); it != scope.memo.end())
    return it->second;
  if (scope.budget) {
    if (*scope.budget == 0) return evalNode(n, *scope.base);
    --*scope.budget;
  }
  Fact f = Fact::top(n->type().width);
  switch (n->op()) {
    case Op::kConst:
      f = Fact::constant(n->constValue());
      break;
    case Op::kInput:
      break;  // free: top
    case Op::kState: {
      const auto it = stateFacts_.find(n);
      if (it != stateFacts_.end()) f = it->second;
      break;
    }
    case Op::kMux:
      f = evalMux(n, scope);
      break;
    default: {
      std::vector<Fact> opFacts;
      opFacts.reserve(n->operands().size());
      for (NodeRef op : n->operands()) opFacts.push_back(evalNode(op, scope));
      f = transfer(n, opFacts);
      break;
    }
  }
  scope.memo.emplace(n, f);
  return f;
}

Fact Analysis::evalMux(ir::NodeRef n, Scope& scope) {
  const Fact sel = evalNode(n->operand(0), scope);
  if (sel.isBottom()) return Fact::bottom(n->type().width);
  if (sel.isConstant())
    return evalNode(n->operand(sel.constantValue().isZero() ? 2 : 1), scope);
  std::unordered_map<ir::NodeRef, Fact> thenMap, elseMap;
  deriveRefinements(n->operand(0), scope, thenMap, elseMap);
  const Fact t = evalArm(n->operand(1), thenMap, scope);
  const Fact e = evalArm(n->operand(2), elseMap, scope);
  return t.join(e);
}

Fact Analysis::evalArm(ir::NodeRef arm,
                       const std::unordered_map<ir::NodeRef, Fact>& refined,
                       Scope& scope) {
  if (refined.empty()) return evalNode(arm, scope);
  // A contradictory refinement means the selector can't take this value on
  // any reachable input: the arm is dead and contributes nothing to the join.
  for (const auto& [node, f] : refined)
    if (f.isBottom()) return Fact::bottom(arm->type().width);
  std::unordered_map<ir::NodeRef, Fact> overlay =
      scope.overlay ? *scope.overlay
                    : std::unordered_map<ir::NodeRef, Fact>();
  for (const auto& [node, f] : refined) {
    const auto it = overlay.find(node);
    if (it == overlay.end()) {
      overlay.emplace(node, f);
    } else {
      Fact m = it->second.meet(f);
      if (m.isBottom()) return Fact::bottom(arm->type().width);
      it->second = m;
    }
  }
  unsigned localBudget = opts_.refineBudget;
  Scope child;
  child.overlay = &overlay;
  child.base = &scope;
  child.budget = scope.budget ? scope.budget : &localBudget;
  return evalNode(arm, child);
}

void Analysis::deriveRefinements(
    ir::NodeRef sel, Scope& scope,
    std::unordered_map<ir::NodeRef, Fact>& thenMap,
    std::unordered_map<ir::NodeRef, Fact>& elseMap) {
  if (sel->op() == Op::kNot) {
    deriveRefinements(sel->operand(0), scope, elseMap, thenMap);
    return;
  }
  if (sel->op() != Op::kEq && sel->op() != Op::kNe &&
      sel->op() != Op::kULt && sel->op() != Op::kULe)
    return;
  NodeRef a = sel->operand(0), b = sel->operand(1);
  if (a->type().isArray()) return;
  const Fact fa = evalNode(a, scope);
  const Fact fb = evalNode(b, scope);
  if (fa.isBottom() || fb.isBottom()) return;
  const unsigned w = a->type().width;
  const BitVector zero(w), ones = BitVector::allOnes(w), one = bvOne(w);
  const auto addRef = [&](std::unordered_map<ir::NodeRef, Fact>& m,
                          NodeRef node, const Fact& base, const Fact& f) {
    if (node->op() == Op::kConst) return;
    if (f == base) return;  // no new information
    const auto it = m.find(node);
    if (it == m.end())
      m.emplace(node, f);
    else
      it->second = it->second.meet(f);
  };
  switch (sel->op()) {
    case Op::kEq:
    case Op::kNe: {
      auto& eqMap = sel->op() == Op::kEq ? thenMap : elseMap;
      auto& neMap = sel->op() == Op::kEq ? elseMap : thenMap;
      addRef(eqMap, a, fa, fa.meet(fb));
      addRef(eqMap, b, fb, fb.meet(fa));
      if (fb.isConstant())
        addRef(neMap, a, fa, excludeConstant(fa, fb.constantValue()));
      if (fa.isConstant())
        addRef(neMap, b, fb, excludeConstant(fb, fa.constantValue()));
      break;
    }
    case Op::kULt: {
      // then: a < b — a <= b.hi-1, b >= a.lo+1; else: a >= b — mirrored.
      addRef(thenMap, a, fa,
             fb.iv().hi.isZero()
                 ? Fact::bottom(w)
                 : fa.meet(Fact::interval(zero, fb.iv().hi - one)));
      addRef(thenMap, b, fb,
             fa.iv().lo.isAllOnes()
                 ? Fact::bottom(w)
                 : fb.meet(Fact::interval(fa.iv().lo + one, ones)));
      addRef(elseMap, a, fa, fa.meet(Fact::interval(fb.iv().lo, ones)));
      addRef(elseMap, b, fb, fb.meet(Fact::interval(zero, fa.iv().hi)));
      break;
    }
    case Op::kULe: {
      addRef(thenMap, a, fa, fa.meet(Fact::interval(zero, fb.iv().hi)));
      addRef(thenMap, b, fb, fb.meet(Fact::interval(fa.iv().lo, ones)));
      addRef(elseMap, a, fa,
             fb.iv().lo.isAllOnes()
                 ? Fact::bottom(w)
                 : fa.meet(Fact::interval(fb.iv().lo + one, ones)));
      addRef(elseMap, b, fb,
             fa.iv().hi.isZero()
                 ? Fact::bottom(w)
                 : fb.meet(Fact::interval(zero, fa.iv().hi - one)));
      break;
    }
    default:
      break;
  }
}

Analysis Analysis::run(const ir::TransitionSystem& ts, const Options& opts) {
  Analysis a(opts);
  for (const ir::StateVar& sv : ts.states())
    a.stateFacts_.emplace(sv.current, initFact(sv));

  // Widening thresholds: every scalar constant appearing in the system, per
  // width.  A clamp's limit always shows up as such a constant, so snapping
  // a still-growing bound to the next threshold lets saturate-at-N idioms
  // converge to [0, N] (the mux-arm refinement then holds the line there)
  // instead of doubling through known-bits hulls all the way to top.
  // Widening only ever enlarges the candidate fact, so soundness is
  // unaffected by the choice of landmarks.
  std::unordered_map<unsigned, std::vector<BitVector>> thresholds;
  {
    std::vector<NodeRef> stack;
    std::unordered_set<NodeRef> seen;
    const auto push = [&](NodeRef n) {
      if (n && seen.insert(n).second) stack.push_back(n);
    };
    for (const ir::StateVar& sv : ts.states()) push(sv.next);
    for (const ir::OutputPort& out : ts.outputs()) {
      push(out.expr);
      push(out.valid);
    }
    for (NodeRef c : ts.constraints()) push(c);
    while (!stack.empty()) {
      NodeRef n = stack.back();
      stack.pop_back();
      if (n->op() == Op::kConst && !n->type().isArray())
        thresholds[n->type().width].push_back(n->constValue());
      for (NodeRef op : n->operands()) push(op);
    }
    for (auto& [w, v] : thresholds)
      std::sort(v.begin(), v.end(),
                [](const BitVector& x, const BitVector& y) { return x.ult(y); });
  }

  bool changed = true;
  while (changed && a.iterations_ < opts.maxIterations) {
    ++a.iterations_;
    changed = false;
    // Evaluate every next-state function under the current state facts (one
    // shared memo per iteration), then join into the state facts.
    Scope scope;
    std::vector<Fact> nextFacts;
    nextFacts.reserve(ts.states().size());
    for (const ir::StateVar& sv : ts.states())
      nextFacts.push_back(a.evalNode(sv.next, scope));
    for (std::size_t i = 0; i < ts.states().size(); ++i) {
      Fact& cur = a.stateFacts_.at(ts.states()[i].current);
      Fact merged = cur.join(nextFacts[i]);
      if (merged == cur) continue;
      if (a.iterations_ > opts.widenAfter) {
        // Prefer snapping the hull to the surrounding program constants
        // (widening with thresholds); fall back to the known-bits hull,
        // which only loses bits across joins, so either way the chain of
        // widened facts has bounded height and the loop terminates.
        Fact wide = Fact::knownBits(merged.kb().zeros, merged.kb().ones);
        if (const auto it = thresholds.find(cur.width());
            it != thresholds.end()) {
          const std::vector<BitVector>& v = it->second;
          const auto hi = std::find_if(
              v.begin(), v.end(),
              [&](const BitVector& t) { return merged.iv().hi.ule(t); });
          if (hi != v.end()) {
            BitVector lo(cur.width());
            for (const BitVector& t : v) {
              if (!t.ule(merged.iv().lo)) break;
              lo = t;
            }
            wide = Fact::interval(lo, *hi);
          }
        }
        merged = wide;
        a.widened_ = true;
        if (merged == cur) continue;
      }
      cur = merged;
      changed = true;
    }
  }
  if (changed) {
    // Hit the iteration cap without stabilizing; only top is sound.
    a.converged_ = false;
    for (auto& [leaf, f] : a.stateFacts_) f = Fact::top(f.width());
  }

  // Final pass: record facts for every node in the next/output/constraint
  // cones under the stabilized state facts.
  Scope scope;
  for (const ir::StateVar& sv : ts.states()) a.evalNode(sv.next, scope);
  for (const ir::OutputPort& out : ts.outputs()) {
    a.evalNode(out.expr, scope);
    if (out.valid) a.evalNode(out.valid, scope);
  }
  for (ir::NodeRef c : ts.constraints()) a.evalNode(c, scope);
  // Mux arms were evaluated in selector-refined child scopes whose memos
  // are discarded, so a node reachable only through an arm (a saturating
  // increment, say) has no recorded fact yet.  Evaluate every cone node in
  // the root scope: the resulting context-free fact is sound in every
  // context, which is what lets the simplifier rewrite the node globally.
  {
    std::vector<NodeRef> stack;
    std::unordered_set<NodeRef> seen;
    const auto push = [&](NodeRef n) {
      if (n && seen.insert(n).second) stack.push_back(n);
    };
    for (const ir::StateVar& sv : ts.states()) push(sv.next);
    for (const ir::OutputPort& out : ts.outputs()) {
      push(out.expr);
      push(out.valid);
    }
    for (NodeRef c : ts.constraints()) push(c);
    while (!stack.empty()) {
      NodeRef n = stack.back();
      stack.pop_back();
      if (scope.memo.find(n) == scope.memo.end()) a.evalNode(n, scope);
      for (NodeRef op : n->operands()) push(op);
    }
  }
  a.facts_ = std::move(scope.memo);
  for (const auto& [leaf, f] : a.stateFacts_)
    a.facts_.insert_or_assign(leaf, f);
  return a;
}

}  // namespace dfv::absint
