#include "absint/simplify.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace dfv::absint {
namespace {

using ir::Context;
using ir::Node;
using ir::NodeRef;
using ir::Op;

/// Rebuilds `n` from already-rewritten operands with the matching Context
/// builder (which re-runs its structural folds).
NodeRef rebuild(Context& ctx, NodeRef n, const std::vector<NodeRef>& ops) {
  switch (n->op()) {
    case Op::kAdd:
      return ctx.add(ops[0], ops[1]);
    case Op::kSub:
      return ctx.sub(ops[0], ops[1]);
    case Op::kMul:
      return ctx.mul(ops[0], ops[1]);
    case Op::kUDiv:
      return ctx.udiv(ops[0], ops[1]);
    case Op::kURem:
      return ctx.urem(ops[0], ops[1]);
    case Op::kSDiv:
      return ctx.sdiv(ops[0], ops[1]);
    case Op::kSRem:
      return ctx.srem(ops[0], ops[1]);
    case Op::kNeg:
      return ctx.neg(ops[0]);
    case Op::kAnd:
      return ctx.bitAnd(ops[0], ops[1]);
    case Op::kOr:
      return ctx.bitOr(ops[0], ops[1]);
    case Op::kXor:
      return ctx.bitXor(ops[0], ops[1]);
    case Op::kNot:
      return ctx.bitNot(ops[0]);
    case Op::kShl:
      return ctx.shl(ops[0], ops[1]);
    case Op::kLShr:
      return ctx.lshr(ops[0], ops[1]);
    case Op::kAShr:
      return ctx.ashr(ops[0], ops[1]);
    case Op::kEq:
      return ctx.eq(ops[0], ops[1]);
    case Op::kNe:
      return ctx.ne(ops[0], ops[1]);
    case Op::kULt:
      return ctx.ult(ops[0], ops[1]);
    case Op::kULe:
      return ctx.ule(ops[0], ops[1]);
    case Op::kSLt:
      return ctx.slt(ops[0], ops[1]);
    case Op::kSLe:
      return ctx.sle(ops[0], ops[1]);
    case Op::kMux:
      return ctx.mux(ops[0], ops[1], ops[2]);
    case Op::kConcat:
      return ctx.concat(ops[0], ops[1]);
    case Op::kExtract:
      return ctx.extract(ops[0], n->attr0(), n->attr1());
    case Op::kZExt:
      return ctx.zext(ops[0], n->attr0());
    case Op::kSExt:
      return ctx.sext(ops[0], n->attr0());
    case Op::kRedAnd:
      return ctx.redAnd(ops[0]);
    case Op::kRedOr:
      return ctx.redOr(ops[0]);
    case Op::kRedXor:
      return ctx.redXor(ops[0]);
    case Op::kArrayRead:
      return ctx.arrayRead(ops[0], ops[1]);
    case Op::kArrayWrite:
      return ctx.arrayWrite(ops[0], ops[1], ops[2]);
    default:
      DFV_CHECK_MSG(false, "rebuild of leaf op " << ir::opName(n->op()));
  }
}

class Rewriter {
 public:
  Rewriter(Context& ctx, const Analysis& analysis, SimplifyStats& stats)
      : ctx_(ctx), analysis_(analysis), stats_(stats) {}

  NodeRef rewrite(NodeRef n) {
    if (const auto it = memo_.find(n); it != memo_.end()) return it->second;
    NodeRef out = rewriteUncached(n);
    DFV_CHECK(out->type() == n->type());
    memo_.emplace(n, out);
    return out;
  }

 private:
  NodeRef rewriteUncached(NodeRef n) {
    const bool scalar = !n->type().isArray();
    // 1) Proven-constant nodes fold outright.  Inputs stay free by
    //    definition; state leaves fold only through their reachable fact,
    //    which is what makes this a reset-scoped (BMC-only) rewrite.
    if (scalar && n->op() != Op::kConst && n->op() != Op::kInput) {
      const Fact f = analysis_.fact(n);
      if (f.isConstant()) {
        ++stats_.nodesFolded;
        return ctx_.constant(f.constantValue());
      }
    }
    if (n->isLeaf()) return n;
    // 2) A mux whose selector is proven constant keeps only the live arm.
    if (n->op() == Op::kMux) {
      const Fact sel = analysis_.fact(n->operand(0));
      if (sel.isConstant()) {
        ++stats_.muxesPruned;
        return rewrite(n->operand(sel.constantValue().isZero() ? 2 : 1));
      }
    }
    std::vector<NodeRef> ops;
    ops.reserve(n->operands().size());
    for (NodeRef op : n->operands()) ops.push_back(rewrite(op));
    // 3) Narrow wrap-around arithmetic whose high result bits are proven
    //    zero: op_w(a,b) == zext(op_w'(a[w'-1:0], b[w'-1:0]), w) whenever
    //    the result fits in w' bits, because mod 2^w' divides mod 2^w.
    if (scalar &&
        (n->op() == Op::kAdd || n->op() == Op::kSub || n->op() == Op::kMul)) {
      const unsigned w = n->type().width;
      const unsigned k = analysis_.fact(n).provenLeadingZeros();
      if (k >= 1 && k < w) {
        const unsigned newW = w - k;
        NodeRef na = ctx_.extract(ops[0], newW - 1, 0);
        NodeRef nb = ctx_.extract(ops[1], newW - 1, 0);
        NodeRef narrow = n->op() == Op::kAdd   ? ctx_.add(na, nb)
                         : n->op() == Op::kSub ? ctx_.sub(na, nb)
                                               : ctx_.mul(na, nb);
        ++stats_.opsNarrowed;
        stats_.bitsNarrowed += k;
        return ctx_.zext(narrow, w);
      }
    }
    return rebuild(ctx_, n, ops);
  }

  Context& ctx_;
  const Analysis& analysis_;
  SimplifyStats& stats_;
  std::unordered_map<NodeRef, NodeRef> memo_;
};

void countCone(NodeRef n, std::unordered_set<NodeRef>& seen) {
  if (!n || !seen.insert(n).second) return;
  for (NodeRef op : n->operands()) countCone(op, seen);
}

std::uint64_t coneSizeOf(const ir::TransitionSystem& ts) {
  std::unordered_set<NodeRef> seen;
  for (const ir::StateVar& sv : ts.states()) {
    countCone(sv.current, seen);
    countCone(sv.next, seen);
  }
  for (const ir::OutputPort& out : ts.outputs()) {
    countCone(out.expr, seen);
    countCone(out.valid, seen);
  }
  for (NodeRef c : ts.constraints()) countCone(c, seen);
  return seen.size();
}

}  // namespace

std::uint64_t coneSize(const ir::TransitionSystem& ts) {
  return coneSizeOf(ts);
}

ir::TransitionSystem simplify(const ir::TransitionSystem& ts,
                              const Analysis& analysis,
                              SimplifyStats* stats) {
  SimplifyStats local;
  SimplifyStats& s = stats ? *stats : local;
  s.nodesBefore += coneSizeOf(ts);
  Rewriter rw(ts.ctx(), analysis, s);

  ir::TransitionSystem out(ts.ctx(), ts.name());
  for (ir::NodeRef in : ts.inputs()) out.addInput(in->name(), in->type());
  for (const ir::StateVar& sv : ts.states())
    out.addState(sv.name(), sv.current->type(), sv.init);
  for (const ir::StateVar& sv : ts.states())
    out.setNext(sv.current, rw.rewrite(sv.next));
  for (const ir::OutputPort& op : ts.outputs())
    out.addOutput(op.name, rw.rewrite(op.expr),
                  op.valid ? rw.rewrite(op.valid) : nullptr);
  for (ir::NodeRef c : ts.constraints()) {
    ir::NodeRef rc = rw.rewrite(c);
    // An assumption proven true on all reachable states adds nothing.
    if (rc->op() == Op::kConst && !rc->constValue().isZero()) continue;
    out.addConstraint(rc);
  }
  out.validate();
  s.nodesAfter += coneSizeOf(out);
  return out;
}

ir::TransitionSystem analyzeAndSimplify(const ir::TransitionSystem& ts,
                                        const Options& opts,
                                        SimplifyStats* stats) {
  const Analysis analysis = Analysis::run(ts, opts);
  return simplify(ts, analysis, stats);
}

}  // namespace dfv::absint
