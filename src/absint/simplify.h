// Verdict-preserving TransitionSystem simplification driven by Analysis
// facts: constant-fold nodes proven constant, drop mux arms whose selector
// is proven constant, and narrow add/sub/mul whose high result bits are
// proven zero (exact, because mod-2^w' arithmetic divides mod-2^w).
//
// SOUNDNESS SCOPE: the facts are reachable-from-reset facts, so the
// simplified system is equivalent to the original on every trace that
// starts at reset — exactly what BMC unrolls.  It is NOT equivalent from an
// arbitrary symbolic state: the SEC induction step must keep the original
// systems (sec::Engine does; see the CLAUDE.md invariant).
//
// The rebuilt system lives in the *same* ir::Context, so hash-consing
// returns the identical input/state leaves and every external binding
// (SecProblem inputs, coupling invariants, output names) stays valid.
#pragma once

#include <cstdint>

#include "absint/analysis.h"
#include "ir/transition_system.h"

namespace dfv::absint {

struct SimplifyStats {
  std::uint64_t nodesFolded = 0;   ///< non-leaf nodes replaced by constants
  std::uint64_t muxesPruned = 0;   ///< muxes with a proven-constant selector
  std::uint64_t opsNarrowed = 0;   ///< add/sub/mul rewritten at lower width
  std::uint64_t bitsNarrowed = 0;  ///< total width removed by narrowing
  std::uint64_t nodesBefore = 0;   ///< unique cone nodes before
  std::uint64_t nodesAfter = 0;    ///< unique cone nodes after

  bool changedAnything() const {
    return nodesFolded + muxesPruned + opsNarrowed != 0;
  }
  SimplifyStats& operator+=(const SimplifyStats& o) {
    nodesFolded += o.nodesFolded;
    muxesPruned += o.muxesPruned;
    opsNarrowed += o.opsNarrowed;
    bitsNarrowed += o.bitsNarrowed;
    nodesBefore += o.nodesBefore;
    nodesAfter += o.nodesAfter;
    return *this;
  }
};

/// Rebuilds `ts` with the fact-driven rewrites applied.  `analysis` must
/// have been run on `ts`.
ir::TransitionSystem simplify(const ir::TransitionSystem& ts,
                              const Analysis& analysis,
                              SimplifyStats* stats = nullptr);

/// Convenience: run the analysis, then simplify.
ir::TransitionSystem analyzeAndSimplify(const ir::TransitionSystem& ts,
                                        const Options& opts = Options(),
                                        SimplifyStats* stats = nullptr);

/// Number of unique nodes in the union of the next/output/constraint cones.
std::uint64_t coneSize(const ir::TransitionSystem& ts);

}  // namespace dfv::absint
