file(REMOVE_RECURSE
  "CMakeFiles/test_slm.dir/slm_test.cpp.o"
  "CMakeFiles/test_slm.dir/slm_test.cpp.o.d"
  "test_slm"
  "test_slm.pdb"
  "test_slm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
