# Empty compiler generated dependencies file for test_slm.
# This may be replaced when dependencies are built.
