file(REMOVE_RECURSE
  "CMakeFiles/test_slm_models.dir/slm_models_test.cpp.o"
  "CMakeFiles/test_slm_models.dir/slm_models_test.cpp.o.d"
  "test_slm_models"
  "test_slm_models.pdb"
  "test_slm_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slm_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
