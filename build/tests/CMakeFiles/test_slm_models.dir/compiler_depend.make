# Empty compiler generated dependencies file for test_slm_models.
# This may be replaced when dependencies are built.
