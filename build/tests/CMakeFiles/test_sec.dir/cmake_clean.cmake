file(REMOVE_RECURSE
  "CMakeFiles/test_sec.dir/sec_test.cpp.o"
  "CMakeFiles/test_sec.dir/sec_test.cpp.o.d"
  "test_sec"
  "test_sec.pdb"
  "test_sec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
