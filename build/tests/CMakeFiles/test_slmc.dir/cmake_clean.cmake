file(REMOVE_RECURSE
  "CMakeFiles/test_slmc.dir/slmc_test.cpp.o"
  "CMakeFiles/test_slmc.dir/slmc_test.cpp.o.d"
  "test_slmc"
  "test_slmc.pdb"
  "test_slmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
