# Empty dependencies file for test_slmc.
# This may be replaced when dependencies are built.
