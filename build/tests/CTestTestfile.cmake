# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_slm[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_aig[1]_include.cmake")
include("/root/repo/build/tests/test_sec[1]_include.cmake")
include("/root/repo/build/tests/test_fp[1]_include.cmake")
include("/root/repo/build/tests/test_cosim[1]_include.cmake")
include("/root/repo/build/tests/test_slmc[1]_include.cmake")
include("/root/repo/build/tests/test_designs[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_emit[1]_include.cmake")
include("/root/repo/build/tests/test_extended[1]_include.cmake")
include("/root/repo/build/tests/test_mutation[1]_include.cmake")
include("/root/repo/build/tests/test_slm_models[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
