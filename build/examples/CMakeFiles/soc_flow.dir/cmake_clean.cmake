file(REMOVE_RECURSE
  "CMakeFiles/soc_flow.dir/soc_flow.cpp.o"
  "CMakeFiles/soc_flow.dir/soc_flow.cpp.o.d"
  "soc_flow"
  "soc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
