# Empty compiler generated dependencies file for soc_flow.
# This may be replaced when dependencies are built.
