# Empty dependencies file for fp_unit.
# This may be replaced when dependencies are built.
