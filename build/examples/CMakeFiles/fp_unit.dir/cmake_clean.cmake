file(REMOVE_RECURSE
  "CMakeFiles/fp_unit.dir/fp_unit.cpp.o"
  "CMakeFiles/fp_unit.dir/fp_unit.cpp.o.d"
  "fp_unit"
  "fp_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
