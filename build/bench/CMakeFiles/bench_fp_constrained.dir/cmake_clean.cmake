file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_constrained.dir/bench_fp_constrained.cpp.o"
  "CMakeFiles/bench_fp_constrained.dir/bench_fp_constrained.cpp.o.d"
  "bench_fp_constrained"
  "bench_fp_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
