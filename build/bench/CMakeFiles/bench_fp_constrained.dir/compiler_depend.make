# Empty compiler generated dependencies file for bench_fp_constrained.
# This may be replaced when dependencies are built.
