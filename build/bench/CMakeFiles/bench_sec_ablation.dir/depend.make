# Empty dependencies file for bench_sec_ablation.
# This may be replaced when dependencies are built.
