file(REMOVE_RECURSE
  "CMakeFiles/bench_sec_ablation.dir/bench_sec_ablation.cpp.o"
  "CMakeFiles/bench_sec_ablation.dir/bench_sec_ablation.cpp.o.d"
  "bench_sec_ablation"
  "bench_sec_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
