file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_associativity.dir/bench_fig1_associativity.cpp.o"
  "CMakeFiles/bench_fig1_associativity.dir/bench_fig1_associativity.cpp.o.d"
  "bench_fig1_associativity"
  "bench_fig1_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
