# Empty compiler generated dependencies file for bench_conditioning.
# This may be replaced when dependencies are built.
