file(REMOVE_RECURSE
  "CMakeFiles/bench_conditioning.dir/bench_conditioning.cpp.o"
  "CMakeFiles/bench_conditioning.dir/bench_conditioning.cpp.o.d"
  "bench_conditioning"
  "bench_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
