file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_sec.dir/bench_incremental_sec.cpp.o"
  "CMakeFiles/bench_incremental_sec.dir/bench_incremental_sec.cpp.o.d"
  "bench_incremental_sec"
  "bench_incremental_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
