# Empty dependencies file for bench_incremental_sec.
# This may be replaced when dependencies are built.
