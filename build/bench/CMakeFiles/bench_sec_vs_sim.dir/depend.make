# Empty dependencies file for bench_sec_vs_sim.
# This may be replaced when dependencies are built.
