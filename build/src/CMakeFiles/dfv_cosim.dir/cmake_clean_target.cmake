file(REMOVE_RECURSE
  "libdfv_cosim.a"
)
