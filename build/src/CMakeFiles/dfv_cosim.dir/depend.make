# Empty dependencies file for dfv_cosim.
# This may be replaced when dependencies are built.
