file(REMOVE_RECURSE
  "CMakeFiles/dfv_cosim.dir/cosim/scoreboard.cpp.o"
  "CMakeFiles/dfv_cosim.dir/cosim/scoreboard.cpp.o.d"
  "CMakeFiles/dfv_cosim.dir/cosim/wrapped_rtl.cpp.o"
  "CMakeFiles/dfv_cosim.dir/cosim/wrapped_rtl.cpp.o.d"
  "libdfv_cosim.a"
  "libdfv_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
