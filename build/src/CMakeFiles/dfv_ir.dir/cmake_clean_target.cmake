file(REMOVE_RECURSE
  "libdfv_ir.a"
)
