
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/eval.cpp" "src/CMakeFiles/dfv_ir.dir/ir/eval.cpp.o" "gcc" "src/CMakeFiles/dfv_ir.dir/ir/eval.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/dfv_ir.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/dfv_ir.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/CMakeFiles/dfv_ir.dir/ir/print.cpp.o" "gcc" "src/CMakeFiles/dfv_ir.dir/ir/print.cpp.o.d"
  "/root/repo/src/ir/transition_system.cpp" "src/CMakeFiles/dfv_ir.dir/ir/transition_system.cpp.o" "gcc" "src/CMakeFiles/dfv_ir.dir/ir/transition_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfv_bitvec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
