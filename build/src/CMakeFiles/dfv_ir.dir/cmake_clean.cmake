file(REMOVE_RECURSE
  "CMakeFiles/dfv_ir.dir/ir/eval.cpp.o"
  "CMakeFiles/dfv_ir.dir/ir/eval.cpp.o.d"
  "CMakeFiles/dfv_ir.dir/ir/expr.cpp.o"
  "CMakeFiles/dfv_ir.dir/ir/expr.cpp.o.d"
  "CMakeFiles/dfv_ir.dir/ir/print.cpp.o"
  "CMakeFiles/dfv_ir.dir/ir/print.cpp.o.d"
  "CMakeFiles/dfv_ir.dir/ir/transition_system.cpp.o"
  "CMakeFiles/dfv_ir.dir/ir/transition_system.cpp.o.d"
  "libdfv_ir.a"
  "libdfv_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
