# Empty dependencies file for dfv_ir.
# This may be replaced when dependencies are built.
