file(REMOVE_RECURSE
  "libdfv_slm.a"
)
