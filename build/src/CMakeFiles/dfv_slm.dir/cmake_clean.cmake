file(REMOVE_RECURSE
  "CMakeFiles/dfv_slm.dir/slm/kernel.cpp.o"
  "CMakeFiles/dfv_slm.dir/slm/kernel.cpp.o.d"
  "libdfv_slm.a"
  "libdfv_slm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_slm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
