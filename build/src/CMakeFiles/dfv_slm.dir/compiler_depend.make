# Empty compiler generated dependencies file for dfv_slm.
# This may be replaced when dependencies are built.
