file(REMOVE_RECURSE
  "libdfv_sec.a"
)
