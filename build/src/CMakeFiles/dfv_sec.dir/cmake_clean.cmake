file(REMOVE_RECURSE
  "CMakeFiles/dfv_sec.dir/sec/engine.cpp.o"
  "CMakeFiles/dfv_sec.dir/sec/engine.cpp.o.d"
  "libdfv_sec.a"
  "libdfv_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
