# Empty dependencies file for dfv_sec.
# This may be replaced when dependencies are built.
