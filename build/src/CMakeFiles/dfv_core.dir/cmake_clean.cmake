file(REMOVE_RECURSE
  "CMakeFiles/dfv_core.dir/core/plan.cpp.o"
  "CMakeFiles/dfv_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/dfv_core.dir/core/report.cpp.o"
  "CMakeFiles/dfv_core.dir/core/report.cpp.o.d"
  "libdfv_core.a"
  "libdfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
