file(REMOVE_RECURSE
  "CMakeFiles/dfv_slmc.dir/slmc/ast.cpp.o"
  "CMakeFiles/dfv_slmc.dir/slmc/ast.cpp.o.d"
  "CMakeFiles/dfv_slmc.dir/slmc/elaborate.cpp.o"
  "CMakeFiles/dfv_slmc.dir/slmc/elaborate.cpp.o.d"
  "CMakeFiles/dfv_slmc.dir/slmc/interp.cpp.o"
  "CMakeFiles/dfv_slmc.dir/slmc/interp.cpp.o.d"
  "CMakeFiles/dfv_slmc.dir/slmc/lint.cpp.o"
  "CMakeFiles/dfv_slmc.dir/slmc/lint.cpp.o.d"
  "CMakeFiles/dfv_slmc.dir/slmc/print.cpp.o"
  "CMakeFiles/dfv_slmc.dir/slmc/print.cpp.o.d"
  "libdfv_slmc.a"
  "libdfv_slmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_slmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
