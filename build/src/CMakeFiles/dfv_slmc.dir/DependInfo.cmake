
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slmc/ast.cpp" "src/CMakeFiles/dfv_slmc.dir/slmc/ast.cpp.o" "gcc" "src/CMakeFiles/dfv_slmc.dir/slmc/ast.cpp.o.d"
  "/root/repo/src/slmc/elaborate.cpp" "src/CMakeFiles/dfv_slmc.dir/slmc/elaborate.cpp.o" "gcc" "src/CMakeFiles/dfv_slmc.dir/slmc/elaborate.cpp.o.d"
  "/root/repo/src/slmc/interp.cpp" "src/CMakeFiles/dfv_slmc.dir/slmc/interp.cpp.o" "gcc" "src/CMakeFiles/dfv_slmc.dir/slmc/interp.cpp.o.d"
  "/root/repo/src/slmc/lint.cpp" "src/CMakeFiles/dfv_slmc.dir/slmc/lint.cpp.o" "gcc" "src/CMakeFiles/dfv_slmc.dir/slmc/lint.cpp.o.d"
  "/root/repo/src/slmc/print.cpp" "src/CMakeFiles/dfv_slmc.dir/slmc/print.cpp.o" "gcc" "src/CMakeFiles/dfv_slmc.dir/slmc/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_bitvec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
