file(REMOVE_RECURSE
  "libdfv_slmc.a"
)
