# Empty compiler generated dependencies file for dfv_slmc.
# This may be replaced when dependencies are built.
