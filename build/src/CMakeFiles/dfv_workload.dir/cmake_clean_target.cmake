file(REMOVE_RECURSE
  "libdfv_workload.a"
)
