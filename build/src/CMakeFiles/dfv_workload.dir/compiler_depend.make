# Empty compiler generated dependencies file for dfv_workload.
# This may be replaced when dependencies are built.
