file(REMOVE_RECURSE
  "CMakeFiles/dfv_workload.dir/workload/workload.cpp.o"
  "CMakeFiles/dfv_workload.dir/workload/workload.cpp.o.d"
  "libdfv_workload.a"
  "libdfv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
