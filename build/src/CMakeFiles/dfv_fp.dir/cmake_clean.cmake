file(REMOVE_RECURSE
  "CMakeFiles/dfv_fp.dir/fp/circuits.cpp.o"
  "CMakeFiles/dfv_fp.dir/fp/circuits.cpp.o.d"
  "CMakeFiles/dfv_fp.dir/fp/softfloat.cpp.o"
  "CMakeFiles/dfv_fp.dir/fp/softfloat.cpp.o.d"
  "libdfv_fp.a"
  "libdfv_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
