# Empty compiler generated dependencies file for dfv_fp.
# This may be replaced when dependencies are built.
