file(REMOVE_RECURSE
  "libdfv_fp.a"
)
