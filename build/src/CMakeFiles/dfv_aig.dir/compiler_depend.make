# Empty compiler generated dependencies file for dfv_aig.
# This may be replaced when dependencies are built.
