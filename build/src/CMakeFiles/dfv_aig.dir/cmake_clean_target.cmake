file(REMOVE_RECURSE
  "libdfv_aig.a"
)
