file(REMOVE_RECURSE
  "CMakeFiles/dfv_aig.dir/aig/aig.cpp.o"
  "CMakeFiles/dfv_aig.dir/aig/aig.cpp.o.d"
  "CMakeFiles/dfv_aig.dir/aig/bitblast.cpp.o"
  "CMakeFiles/dfv_aig.dir/aig/bitblast.cpp.o.d"
  "CMakeFiles/dfv_aig.dir/aig/cnf.cpp.o"
  "CMakeFiles/dfv_aig.dir/aig/cnf.cpp.o.d"
  "libdfv_aig.a"
  "libdfv_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
