file(REMOVE_RECURSE
  "CMakeFiles/dfv_rtl.dir/rtl/lower.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/lower.cpp.o.d"
  "CMakeFiles/dfv_rtl.dir/rtl/mutate.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/mutate.cpp.o.d"
  "CMakeFiles/dfv_rtl.dir/rtl/netlist.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/netlist.cpp.o.d"
  "CMakeFiles/dfv_rtl.dir/rtl/sim.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/sim.cpp.o.d"
  "CMakeFiles/dfv_rtl.dir/rtl/vcd.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/vcd.cpp.o.d"
  "CMakeFiles/dfv_rtl.dir/rtl/verilog.cpp.o"
  "CMakeFiles/dfv_rtl.dir/rtl/verilog.cpp.o.d"
  "libdfv_rtl.a"
  "libdfv_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
