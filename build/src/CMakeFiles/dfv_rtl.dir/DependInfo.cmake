
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/lower.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/lower.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/lower.cpp.o.d"
  "/root/repo/src/rtl/mutate.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/mutate.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/mutate.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/netlist.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/netlist.cpp.o.d"
  "/root/repo/src/rtl/sim.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/sim.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/sim.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/vcd.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/vcd.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/CMakeFiles/dfv_rtl.dir/rtl/verilog.cpp.o" "gcc" "src/CMakeFiles/dfv_rtl.dir/rtl/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_bitvec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
