file(REMOVE_RECURSE
  "libdfv_rtl.a"
)
