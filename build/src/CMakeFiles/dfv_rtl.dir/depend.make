# Empty dependencies file for dfv_rtl.
# This may be replaced when dependencies are built.
