# Empty dependencies file for dfv_designs.
# This may be replaced when dependencies are built.
