file(REMOVE_RECURSE
  "CMakeFiles/dfv_designs.dir/designs/conv.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/conv.cpp.o.d"
  "CMakeFiles/dfv_designs.dir/designs/fir.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/fir.cpp.o.d"
  "CMakeFiles/dfv_designs.dir/designs/fpadd.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/fpadd.cpp.o.d"
  "CMakeFiles/dfv_designs.dir/designs/gcd.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/gcd.cpp.o.d"
  "CMakeFiles/dfv_designs.dir/designs/macpipe.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/macpipe.cpp.o.d"
  "CMakeFiles/dfv_designs.dir/designs/memsys.cpp.o"
  "CMakeFiles/dfv_designs.dir/designs/memsys.cpp.o.d"
  "libdfv_designs.a"
  "libdfv_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
