file(REMOVE_RECURSE
  "libdfv_designs.a"
)
