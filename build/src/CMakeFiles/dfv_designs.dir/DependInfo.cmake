
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/conv.cpp" "src/CMakeFiles/dfv_designs.dir/designs/conv.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/conv.cpp.o.d"
  "/root/repo/src/designs/fir.cpp" "src/CMakeFiles/dfv_designs.dir/designs/fir.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/fir.cpp.o.d"
  "/root/repo/src/designs/fpadd.cpp" "src/CMakeFiles/dfv_designs.dir/designs/fpadd.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/fpadd.cpp.o.d"
  "/root/repo/src/designs/gcd.cpp" "src/CMakeFiles/dfv_designs.dir/designs/gcd.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/gcd.cpp.o.d"
  "/root/repo/src/designs/macpipe.cpp" "src/CMakeFiles/dfv_designs.dir/designs/macpipe.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/macpipe.cpp.o.d"
  "/root/repo/src/designs/memsys.cpp" "src/CMakeFiles/dfv_designs.dir/designs/memsys.cpp.o" "gcc" "src/CMakeFiles/dfv_designs.dir/designs/memsys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfv_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_slmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_sec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_slm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dfv_bitvec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
