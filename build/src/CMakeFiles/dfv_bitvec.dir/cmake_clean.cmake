file(REMOVE_RECURSE
  "CMakeFiles/dfv_bitvec.dir/bitvec/bitvector.cpp.o"
  "CMakeFiles/dfv_bitvec.dir/bitvec/bitvector.cpp.o.d"
  "libdfv_bitvec.a"
  "libdfv_bitvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_bitvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
