# Empty dependencies file for dfv_bitvec.
# This may be replaced when dependencies are built.
