file(REMOVE_RECURSE
  "libdfv_bitvec.a"
)
