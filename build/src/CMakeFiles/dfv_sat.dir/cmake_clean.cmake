file(REMOVE_RECURSE
  "CMakeFiles/dfv_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/dfv_sat.dir/sat/solver.cpp.o.d"
  "libdfv_sat.a"
  "libdfv_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
