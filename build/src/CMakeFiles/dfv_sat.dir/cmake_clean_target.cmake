file(REMOVE_RECURSE
  "libdfv_sat.a"
)
