# Empty compiler generated dependencies file for dfv_sat.
# This may be replaced when dependencies are built.
